package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// Rule is one learned classification rule
//
//	Property(X, Y) ∧ subsegment(Y, Segment) ⇒ Class(X)
//
// carrying the raw counts it was mined from, so every quality measure is
// recomputable and auditable ("concise and easy to understand by an
// expert", §6 of the paper).
type Rule struct {
	Property rdf.Term
	Segment  string
	Class    rdf.Term

	// PremiseCount is |{X : p(X,Y) ∧ subsegment(Y,a)}| over TS.
	PremiseCount int
	// JointCount is |{X : p(X,Y) ∧ subsegment(Y,a) ∧ c(X)}| over TS.
	JointCount int
	// ClassCount is |{X : c(X)}| over TS.
	ClassCount int
	// TSSize is |TS|.
	TSSize int

	// Generalized marks rules produced by the subsumption extension
	// rather than directly by Algorithm 1.
	Generalized bool
}

// Support is JointCount / |TS|: the rule's representativeness.
func (r Rule) Support() float64 {
	if r.TSSize == 0 {
		return 0
	}
	return float64(r.JointCount) / float64(r.TSSize)
}

// Confidence is JointCount / PremiseCount: the proportion of
// premise-satisfying items that are instances of the conclusion class.
func (r Rule) Confidence() float64 {
	if r.PremiseCount == 0 {
		return 0
	}
	return float64(r.JointCount) / float64(r.PremiseCount)
}

// Lift is Confidence / (ClassCount / |TS|): the deviation from premise ⫫
// conclusion. Lift > 1 means the segment positively signals the class;
// the higher the lift, the smaller the selected subspace relative to the
// catalog.
func (r Rule) Lift() float64 {
	if r.ClassCount == 0 || r.TSSize == 0 {
		return 0
	}
	classRate := float64(r.ClassCount) / float64(r.TSSize)
	return r.Confidence() / classRate
}

// Coverage is PremiseCount / |TS|: how much of the training set the
// premise fires on (an auxiliary measure from the quality-measures
// literature the paper cites).
func (r Rule) Coverage() float64 {
	if r.TSSize == 0 {
		return 0
	}
	return float64(r.PremiseCount) / float64(r.TSSize)
}

// Specificity is the proportion of non-class items the premise correctly
// avoids: |{¬premise ∧ ¬class}| / |{¬class}|.
func (r Rule) Specificity() float64 {
	nonClass := r.TSSize - r.ClassCount
	if nonClass <= 0 {
		return 0
	}
	premiseNonClass := r.PremiseCount - r.JointCount
	return float64(nonClass-premiseNonClass) / float64(nonClass)
}

// String renders the rule in the paper's notation with its measures.
func (r Rule) String() string {
	return fmt.Sprintf("%s(X,Y) ∧ subsegment(Y,%q) ⇒ %s(X) [sup=%.4f conf=%.3f lift=%.1f]",
		localName(r.Property), r.Segment, localName(r.Class),
		r.Support(), r.Confidence(), r.Lift())
}

func localName(t rdf.Term) string {
	s := t.Value
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '#' || s[i] == '/' {
			return s[i+1:]
		}
	}
	return s
}

// Less orders rules the way the paper ranks subspaces: higher confidence
// first; on ties higher lift first ("consider first the smaller
// subspaces"); remaining ties broken by support then deterministically by
// identity so sorts are stable across runs.
func (r Rule) Less(o Rule) bool {
	if rc, oc := r.Confidence(), o.Confidence(); rc != oc {
		return rc > oc
	}
	if rl, ol := r.Lift(), o.Lift(); rl != ol {
		return rl > ol
	}
	if rs, os := r.Support(), o.Support(); rs != os {
		return rs > os
	}
	if c := r.Property.Compare(o.Property); c != 0 {
		return c < 0
	}
	if r.Segment != o.Segment {
		return r.Segment < o.Segment
	}
	return r.Class.Compare(o.Class) < 0
}

// RuleSet is an ordered collection of rules.
type RuleSet struct {
	Rules []Rule
}

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.Rules) }

// Sort orders the rules per Rule.Less.
func (rs *RuleSet) Sort() {
	sort.Slice(rs.Rules, func(i, j int) bool { return rs.Rules[i].Less(rs.Rules[j]) })
}

// ConfidenceBand returns the rules with confidence in [lo, hi); pass
// hi > 1 to make the band inclusive of confidence 1. The result preserves
// rule order.
func (rs *RuleSet) ConfidenceBand(lo, hi float64) []Rule {
	var out []Rule
	for _, r := range rs.Rules {
		if c := r.Confidence(); c >= lo && c < hi {
			out = append(out, r)
		}
	}
	return out
}

// MinConfidence returns the rules with confidence >= min, preserving
// order.
func (rs *RuleSet) MinConfidence(min float64) []Rule {
	var out []Rule
	for _, r := range rs.Rules {
		if r.Confidence() >= min {
			out = append(out, r)
		}
	}
	return out
}

// Classes returns the distinct conclusion classes, sorted.
func (rs *RuleSet) Classes() []rdf.Term {
	set := map[rdf.Term]struct{}{}
	for _, r := range rs.Rules {
		set[r.Class] = struct{}{}
	}
	out := make([]rdf.Term, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Properties returns the distinct premise properties, sorted.
func (rs *RuleSet) Properties() []rdf.Term {
	set := map[rdf.Term]struct{}{}
	for _, r := range rs.Rules {
		set[r.Property] = struct{}{}
	}
	out := make([]rdf.Term, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// AverageLift returns the mean lift of the rules (0 for an empty set) —
// the aggregate Section 5 reports per confidence band.
func AverageLift(rules []Rule) float64 {
	if len(rules) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rules {
		sum += r.Lift()
	}
	return sum / float64(len(rules))
}

// ruleWireVersion guards the text serialization format.
const ruleWireVersion = "linkrules/1"

// Write serializes the rule set to a line-oriented text format that
// round-trips all counts (tab-separated: property, segment, class,
// premise, joint, classCount, tsSize, generalized).
func (rs *RuleSet) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, ruleWireVersion); err != nil {
		return fmt.Errorf("core: writing rules: %w", err)
	}
	for _, r := range rs.Rules {
		gen := "0"
		if r.Generalized {
			gen = "1"
		}
		_, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
			r.Property.Value, escapeField(r.Segment), r.Class.Value,
			r.PremiseCount, r.JointCount, r.ClassCount, r.TSSize, gen)
		if err != nil {
			return fmt.Errorf("core: writing rules: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: writing rules: %w", err)
	}
	return nil
}

// ReadRules parses a rule set written by Write.
func ReadRules(r io.Reader) (*RuleSet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("core: reading rules: empty input")
	}
	if got := strings.TrimSpace(sc.Text()); got != ruleWireVersion {
		return nil, fmt.Errorf("core: reading rules: unsupported format %q", got)
	}
	rs := &RuleSet{}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 8 {
			return nil, fmt.Errorf("core: reading rules: line %d: %d fields, want 8", lineNo, len(fields))
		}
		nums := make([]int, 4)
		for i := 0; i < 4; i++ {
			n, err := strconv.Atoi(fields[3+i])
			if err != nil {
				return nil, fmt.Errorf("core: reading rules: line %d: bad count %q", lineNo, fields[3+i])
			}
			nums[i] = n
		}
		rs.Rules = append(rs.Rules, Rule{
			Property:     rdf.NewIRI(fields[0]),
			Segment:      unescapeField(fields[1]),
			Class:        rdf.NewIRI(fields[2]),
			PremiseCount: nums[0],
			JointCount:   nums[1],
			ClassCount:   nums[2],
			TSSize:       nums[3],
			Generalized:  fields[7] == "1",
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: reading rules: %w", err)
	}
	return rs, nil
}

// escapeField protects tabs and newlines inside segments.
func escapeField(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\t", `\t`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func unescapeField(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
