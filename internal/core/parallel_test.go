package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ontology"
	"repro/internal/rdf"
)

// parallelFixture builds a corpus big enough that the learning passes
// genuinely fan out (hundreds of links across many chunks), with enough
// segment/class diversity that every counting map has real contention
// for a buggy implementation to scramble.
func parallelFixture(t testing.TB, n int) (TrainingSet, *rdf.Graph, *rdf.Graph, *ontology.Ontology) {
	t.Helper()
	se := rdf.NewGraph()
	sl := rdf.NewGraph()
	classes := []rdf.Term{clsFFR, clsWWR, clsTant, clsCer, clsRes, clsCap}
	markers := []string{"ohm", "T83", "CER", "SMD", "AXIAL", "X7R", "WW"}
	var ts TrainingSet
	for i := 0; i < n; i++ {
		ext := iri(fmt.Sprintf("ext/p%d", i))
		loc := iri(fmt.Sprintf("loc/p%d", i))
		pn := fmt.Sprintf("%s-%s.%d", markers[i%len(markers)], markers[(i/3)%len(markers)], i%29)
		se.Add(rdf.T(ext, pnProp, rdf.NewLiteral(pn)))
		se.Add(rdf.T(ext, mfProp, rdf.NewLiteral(fmt.Sprintf("Maker %d Corp", i%11))))
		sl.Add(rdf.T(loc, rdf.TypeTerm, classes[i%len(classes)]))
		if i%5 == 0 {
			sl.Add(rdf.T(loc, rdf.TypeTerm, classes[(i+1)%len(classes)]))
		}
		ts.Links = append(ts.Links, Link{External: ext, Local: loc})
	}
	return ts, se, sl, testOntology(t)
}

// ruleBytes serializes a model's rule set, the byte-identity witness.
func ruleBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Rules.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLearnDeterministicAcrossWorkers pins the tentpole guarantee: the
// learned rules are byte-identical and the statistics equal at every
// worker count. Run under -race this also exercises the fan-out for
// data races.
func TestLearnDeterministicAcrossWorkers(t *testing.T) {
	ts, se, sl, ol := parallelFixture(t, 600)
	cfg := LearnerConfig{SupportThreshold: 0.01, Workers: 1}
	want, err := LearnCtx(context.Background(), cfg, ts, se, sl, ol)
	if err != nil {
		t.Fatal(err)
	}
	if want.Rules.Len() == 0 {
		t.Fatal("fixture learned no rules; the determinism check would be vacuous")
	}
	wantBytes := ruleBytes(t, want)
	for _, workers := range []int{4, 16} {
		cfg.Workers = workers
		got, err := LearnCtx(context.Background(), cfg, ts, se, sl, ol)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ruleBytes(t, got), wantBytes) {
			t.Errorf("Workers=%d: rule set differs from Workers=1", workers)
		}
		if got.Stats != want.Stats {
			t.Errorf("Workers=%d: stats differ: got %+v, want %+v", workers, got.Stats, want.Stats)
		}
	}
}

// TestExtendDeterministicAcrossWorkers covers the shared counting passes
// through the incremental path: extending a parallel model matches
// relearning on the union, at several worker counts.
func TestExtendDeterministicAcrossWorkers(t *testing.T) {
	ts, se, sl, ol := parallelFixture(t, 400)
	half := TrainingSet{Links: ts.Links[:200]}
	rest := ts.Links[200:]
	cfg := LearnerConfig{SupportThreshold: 0.01, Workers: 1}
	full, err := Learn(cfg, ts, se, sl, ol)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := ruleBytes(t, full)
	for _, workers := range []int{1, 8} {
		cfg.Workers = workers
		base, err := Learn(cfg, half, se, sl, ol)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := base.Extend(rest, se, sl, ol)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ruleBytes(t, ext), wantBytes) {
			t.Errorf("Workers=%d: extended rule set differs from full relearn", workers)
		}
		if !reflect.DeepEqual(ext.Stats, full.Stats) {
			t.Errorf("Workers=%d: extended stats differ", workers)
		}
	}
}

// TestLearnCtxCancellation asserts a cancelled context aborts learning
// promptly with ctx's error and no partial model, on both the serial
// and parallel paths.
func TestLearnCtxCancellation(t *testing.T) {
	ts, se, sl, ol := parallelFixture(t, 600)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		m, err := LearnCtx(ctx, LearnerConfig{SupportThreshold: 0.01, Workers: workers}, ts, se, sl, ol)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if m != nil {
			t.Fatalf("Workers=%d: got a model despite cancellation", workers)
		}
	}
}

// TestLearnWorkersNotPartOfIdentity documents that Workers is a pure
// wall-time knob: configs differing only in Workers learn equal models,
// which is what lets the durable layer exclude it from the persisted
// learner identity.
func TestLearnWorkersNotPartOfIdentity(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	a, err := Learn(LearnerConfig{SupportThreshold: 0.1, Workers: 1}, ts, se, sl, ol)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Learn(LearnerConfig{SupportThreshold: 0.1, Workers: 7}, ts, se, sl, ol)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ruleBytes(t, a), ruleBytes(t, b)) {
		t.Fatal("models differ across Workers settings")
	}
}
