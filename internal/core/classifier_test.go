package core

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
)

// learnFixture runs the standard scenario learner once for classifier
// tests.
func learnFixture(t testing.TB) (*Model, *rdf.Graph, *rdf.Graph) {
	ts, se, sl, ol := fixture(t)
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	return m, se, sl
}

func TestClassifyNewItem(t *testing.T) {
	m, se, _ := learnFixture(t)
	cl := NewClassifier(&m.Rules, m.Config.Splitter)

	item := iri("ext/new1")
	se.Add(rdf.T(item, pnProp, rdf.NewLiteral("XYZ-ohm-55")))
	preds := cl.Classify(item, se)
	if len(preds) != 1 {
		t.Fatalf("predictions = %v, want 1", preds)
	}
	if preds[0].Class != clsFFR {
		t.Errorf("predicted %v, want FixedFilmResistor", preds[0].Class)
	}
	if preds[0].Rule.Confidence() != 1 {
		t.Errorf("justifying rule confidence = %v", preds[0].Rule.Confidence())
	}
}

func TestClassifyDedupsSameClassKeepingBestRule(t *testing.T) {
	m, se, _ := learnFixture(t)
	cl := NewClassifier(&m.Rules, m.Config.Splitter)

	// "T83" fires T83⇒Tant (conf 1) and "SMD" fires SMD⇒Tant (conf 0.5):
	// same subspace (Tant), so only the better rule survives.
	item := iri("ext/new2")
	se.Add(rdf.T(item, pnProp, rdf.NewLiteral("T83-SMD-77")))
	preds := cl.Classify(item, se)
	if len(preds) != 1 {
		t.Fatalf("predictions = %v, want 1 after same-subspace dedup", preds)
	}
	if preds[0].Rule.Segment != "T83" {
		t.Errorf("kept rule %v, want the T83 (higher confidence) one", preds[0].Rule)
	}
}

func TestClassifyOrdering(t *testing.T) {
	m, se, _ := learnFixture(t)
	cl := NewClassifier(&m.Rules, m.Config.Splitter)

	// "ohm" (conf 1 ⇒ FFR) and "SMD" (conf 0.5 ⇒ Tant): two predictions
	// ordered by confidence.
	item := iri("ext/new3")
	se.Add(rdf.T(item, pnProp, rdf.NewLiteral("ohm-SMD")))
	preds := cl.Classify(item, se)
	if len(preds) != 2 {
		t.Fatalf("predictions = %v, want 2", preds)
	}
	if preds[0].Class != clsFFR || preds[1].Class != clsTant {
		t.Errorf("order = [%v %v], want [FFR Tant]", preds[0].Class, preds[1].Class)
	}
}

func TestClassifyNoRuleFires(t *testing.T) {
	m, se, _ := learnFixture(t)
	cl := NewClassifier(&m.Rules, m.Config.Splitter)
	item := iri("ext/new4")
	se.Add(rdf.T(item, pnProp, rdf.NewLiteral("UNKNOWN-99")))
	if preds := cl.Classify(item, se); preds != nil {
		t.Errorf("predictions = %v, want nil", preds)
	}
	if _, ok := cl.Best(item, se); ok {
		t.Error("Best reported ok with no rules fired")
	}
}

func TestClassifyValuesWithoutGraph(t *testing.T) {
	m, _, _ := learnFixture(t)
	cl := NewClassifier(&m.Rules, m.Config.Splitter)
	preds := cl.ClassifyValues(map[rdf.Term][]string{pnProp: {"CER-0042"}})
	if len(preds) != 1 || preds[0].Class != clsCer {
		t.Errorf("ClassifyValues = %v", preds)
	}
	// Unknown property contributes nothing.
	preds = cl.ClassifyValues(map[rdf.Term][]string{iri("bogus"): {"CER"}})
	if preds != nil {
		t.Errorf("unknown property produced %v", preds)
	}
}

func TestClassifierProperties(t *testing.T) {
	m, _, _ := learnFixture(t)
	cl := NewClassifier(&m.Rules, m.Config.Splitter)
	props := cl.Properties()
	if len(props) != 1 || props[0] != pnProp {
		t.Errorf("Properties = %v", props)
	}
}

func TestClassifierNilSplitterDefault(t *testing.T) {
	m, _, _ := learnFixture(t)
	cl := NewClassifier(&m.Rules, nil)
	preds := cl.ClassifyValues(map[rdf.Term][]string{pnProp: {"zz ohm zz"}})
	if len(preds) != 1 || preds[0].Class != clsFFR {
		t.Errorf("default splitter predictions = %v", preds)
	}
}

func buildCatalog(t testing.TB, sizes map[rdf.Term]int) *rdf.Graph {
	t.Helper()
	sl := rdf.NewGraph()
	for class, n := range sizes {
		for i := 0; i < n; i++ {
			inst := iri(fmt.Sprintf("cat/%s-%d", localName(class), i))
			sl.Add(rdf.T(inst, rdf.TypeTerm, class))
		}
	}
	return sl
}

func TestInstanceIndex(t *testing.T) {
	ol := testOntology(t)
	sl := buildCatalog(t, map[rdf.Term]int{clsFFR: 10, clsWWR: 5, clsTant: 3})
	ix := NewInstanceIndex(sl, ol)
	if ix.Total() != 18 {
		t.Errorf("Total = %d, want 18", ix.Total())
	}
	if got := ix.Count(clsFFR); got != 10 {
		t.Errorf("Count(FFR) = %d", got)
	}
	// Parent class includes subclass instances.
	if got := ix.Count(clsRes); got != 15 {
		t.Errorf("Count(Resistor) = %d, want 15", got)
	}
	if got := ix.Count(clsProd); got != 18 {
		t.Errorf("Count(Product) = %d, want 18", got)
	}
	if got := ix.Count(clsCer); got != 0 {
		t.Errorf("Count(Ceramic) = %d, want 0", got)
	}
	// Memoized slice identity on repeat calls.
	a := ix.Instances(clsRes)
	b := ix.Instances(clsRes)
	if &a[0] != &b[0] {
		t.Error("Instances not memoized")
	}
}

func TestInstanceIndexIgnoresClassDeclarations(t *testing.T) {
	ol := testOntology(t)
	sl := buildCatalog(t, map[rdf.Term]int{clsFFR: 2})
	// Class declarations (x rdf:type owl:Class) must not count as
	// instances.
	sl.Add(rdf.T(clsFFR, rdf.TypeTerm, rdf.ClassTerm))
	ix := NewInstanceIndex(sl, ol)
	if ix.Total() != 2 {
		t.Errorf("Total = %d, want 2", ix.Total())
	}
}

func TestSpaceAndReduction(t *testing.T) {
	m, se, _ := learnFixture(t)
	ol := testOntology(t)
	sl := buildCatalog(t, map[rdf.Term]int{clsFFR: 20, clsWWR: 20, clsTant: 10, clsCer: 50})
	ix := NewInstanceIndex(sl, ol)
	cl := NewClassifier(&m.Rules, m.Config.Splitter)

	item := iri("ext/new5")
	se.Add(rdf.T(item, pnProp, rdf.NewLiteral("ohm-SMD")))
	preds := cl.Classify(item, se)
	sr := Space(item, preds, ix)
	if sr.CatalogSize != 100 {
		t.Errorf("CatalogSize = %d", sr.CatalogSize)
	}
	// FFR (20) ∪ Tant (10) = 30 candidates.
	if sr.UnionSize != 30 {
		t.Errorf("UnionSize = %d, want 30", sr.UnionSize)
	}
	if got := sr.ReductionFactor(); got < 3.32 || got > 3.34 {
		t.Errorf("ReductionFactor = %v, want ~3.33", got)
	}
	if len(sr.Subspaces) != 2 {
		t.Fatalf("Subspaces = %v", sr.Subspaces)
	}
	if sr.Subspaces[0].Class != clsFFR || sr.Subspaces[0].Size != 20 {
		t.Errorf("first subspace = %+v", sr.Subspaces[0])
	}
	pairs := CandidatePairs(sr, ix)
	if len(pairs) != 30 {
		t.Errorf("CandidatePairs = %d, want 30", len(pairs))
	}
	for _, p := range pairs {
		if p[0] != item {
			t.Fatalf("pair %v does not start with the item", p)
		}
	}
}

func TestSpaceNoPredictions(t *testing.T) {
	ol := testOntology(t)
	sl := buildCatalog(t, map[rdf.Term]int{clsFFR: 5})
	ix := NewInstanceIndex(sl, ol)
	sr := Space(iri("ext/x"), nil, ix)
	if sr.UnionSize != 0 {
		t.Errorf("UnionSize = %d", sr.UnionSize)
	}
	if sr.ReductionFactor() != 0 {
		t.Errorf("ReductionFactor = %v, want 0 sentinel", sr.ReductionFactor())
	}
	if len(CandidatePairs(sr, ix)) != 0 {
		t.Error("CandidatePairs for empty report not empty")
	}
}

func TestInstanceIndexFreeze(t *testing.T) {
	ol := testOntology(t)
	sl := buildCatalog(t, map[rdf.Term]int{clsFFR: 3, clsTant: 2})
	ix := NewInstanceIndex(sl, ol)
	ix.Freeze([]rdf.Term{clsFFR, clsRes, clsProd})
	if got := ix.Count(clsRes); got != 3 {
		t.Errorf("Count after Freeze = %d", got)
	}
}
