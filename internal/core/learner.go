package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ontology"
	"repro/internal/par"
	"repro/internal/rdf"
	"repro/internal/segment"
)

// LearnerConfig parameterizes Algorithm 1. The zero value plus a training
// set reproduces the paper's experiment settings: every data property of
// SE, separator splitting on non-alphanumerics, support threshold 0.002.
type LearnerConfig struct {
	// Properties is the expert-selected property set P. Empty means all
	// properties of SE whose objects are literals ("all if no selection",
	// Algorithm 1).
	Properties []rdf.Term
	// Splitter decomposes property values; nil means the paper's default
	// separator splitter (split on every non-alphanumeric rune).
	Splitter segment.Splitter
	// SupportThreshold is th, as a fraction of |TS|; 0 means 0.002.
	SupportThreshold float64
	// Workers caps the goroutines used by the learning passes; 0 means
	// GOMAXPROCS. Purely a wall-time knob: the learned model is
	// byte-identical at every setting, so Workers is NOT part of the
	// learner identity persisted with snapshots (see service durable
	// metadata) and changing it never invalidates a recovered model.
	Workers int
}

func (cfg LearnerConfig) withDefaults() LearnerConfig {
	if cfg.Splitter == nil {
		cfg.Splitter = segment.NewSeparatorSplitter(segment.Options{})
	}
	if cfg.SupportThreshold == 0 {
		cfg.SupportThreshold = 0.002
	}
	return cfg
}

// LearnStats reports the corpus-level counters of a learning run — the
// numbers Section 5 of the paper quotes alongside Table 1.
type LearnStats struct {
	// TSSize is |TS| after deduplication.
	TSSize int
	// Properties is |P| after discovery.
	Properties int
	// DistinctSegments is the number of distinct segments over all
	// property values of TS's external items (paper: 7842).
	DistinctSegments int
	// SegmentOccurrences is the total number of segment occurrences
	// (paper: 26077).
	SegmentOccurrences int
	// SelectedSegmentOccurrences is the occurrences covered by frequent
	// (property, segment) pairs (paper: 7058).
	SelectedSegmentOccurrences int
	// FrequentPairs is the number of (property, segment) pairs above th.
	FrequentPairs int
	// CandidateClasses is the number of distinct most-specific classes
	// carried by TS's local items (paper: 67 frequent leaf classes were
	// described in TS).
	CandidateClasses int
	// FrequentClasses is the number of classes above th (paper: 68
	// classes with more than 20 instances).
	FrequentClasses int
	// RuleCount is the number of rules selected (paper: 144).
	RuleCount int
	// ClassesWithRules is the number of distinct conclusion classes
	// among the selected rules (paper: interesting segments for 16
	// classes).
	ClassesWithRules int
}

// Model is the result of a learning run: the rule set plus the retained
// per-link index needed by evaluation and by the generalization
// extension.
type Model struct {
	Rules RuleSet
	Stats LearnStats
	// Config echoes the effective configuration (defaults applied).
	Config LearnerConfig

	index *tsIndex
}

// tsIndex stores, for every training link, the segments of the external
// item per property and the most-specific classes of the local item.
type tsIndex struct {
	facts []linkFacts
	// classOf counts links per class (most-specific, local side).
	classOf map[rdf.Term]int
}

type linkFacts struct {
	link    Link
	segs    map[rdf.Term]map[string]struct{}
	classes []rdf.Term
}

// propertySegment is a premise atom key.
type propertySegment struct {
	property rdf.Term
	segment  string
}

// conjunction is a (premise atom, conclusion class) pair, the key of the
// joint-frequency count behind rule emission.
type conjunction struct {
	ps propertySegment
	c  rdf.Term
}

// Learn runs Algorithm 1 over the training set: se supplies the property
// facts of the external items, sl the rdf:type facts of the local items,
// ol the ontology used to reduce types to most-specific classes.
func Learn(cfg LearnerConfig, ts TrainingSet, se, sl *rdf.Graph, ol *ontology.Ontology) (*Model, error) {
	return LearnCtx(context.Background(), cfg, ts, se, sl, ol)
}

// LearnCtx is Learn with cancellation: the per-link splitting pass and
// the counting passes fan out over cfg.Workers goroutines and observe
// ctx between work chunks. On cancellation LearnCtx returns ctx's error
// and no model — never a partially-counted one.
func LearnCtx(ctx context.Context, cfg LearnerConfig, ts TrainingSet, se, sl *rdf.Graph, ol *ontology.Ontology) (*Model, error) {
	cfg = cfg.withDefaults()
	ts = ts.Dedup()
	if ts.Len() == 0 {
		return nil, ErrEmptyTrainingSet
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if cfg.SupportThreshold < 0 || cfg.SupportThreshold >= 1 {
		return nil, fmt.Errorf("core: support threshold %v out of (0,1)", cfg.SupportThreshold)
	}

	props := cfg.Properties
	if len(props) == 0 {
		props = discoverProperties(ts, se)
	}
	if len(props) == 0 {
		return nil, fmt.Errorf("core: no literal-valued properties found for training externals")
	}

	// The ontology memoizes its transitive closure on first query without
	// locking; force that build before fanning out so the workers only
	// ever read it.
	if ol != nil {
		ol.MostSpecific(nil)
	}

	// Pass 1 (Algorithm 1, first loop): split every property value of
	// every external item into segments, recording per-link segment sets
	// and corpus occurrence statistics. The per-link work — graph reads,
	// splitting, set building — fans out over workers; the ordered result
	// slices are then replayed serially into the corpus-level counters,
	// so the index and statistics are byte-identical at every worker
	// count.
	type pass1 struct {
		lf       linkFacts
		segLists [][]string
	}
	perLink, err := par.MapChunks(ctx, cfg.Workers, 0, ts.Links, func(link Link) (pass1, bool) {
		r := pass1{lf: linkFacts{link: link, segs: map[rdf.Term]map[string]struct{}{}}}
		for _, p := range props {
			for _, v := range se.Objects(link.External, p) {
				if !v.IsLiteral() {
					continue
				}
				segs := cfg.Splitter.Split(v.Value)
				if len(segs) == 0 {
					continue
				}
				r.segLists = append(r.segLists, segs)
				set := r.lf.segs[p]
				if set == nil {
					set = map[string]struct{}{}
					r.lf.segs[p] = set
				}
				for _, a := range segs {
					set[a] = struct{}{}
				}
			}
		}
		r.lf.classes = mostSpecificClasses(link.Local, sl, ol)
		return r, true
	})
	if err != nil {
		return nil, err
	}
	idx := &tsIndex{facts: make([]linkFacts, 0, len(perLink)), classOf: map[rdf.Term]int{}}
	segStats := segment.NewStats()
	for _, r := range perLink {
		for _, segs := range r.segLists {
			segStats.ObserveSegments(segs)
		}
		for _, c := range r.lf.classes {
			idx.classOf[c]++
		}
		idx.facts = append(idx.facts, r.lf)
	}

	// Passes 2-5 (premise, class and conjunction frequencies, rule
	// emission) are shared with the incremental path.
	return rebuildFromIndex(ctx, cfg, props, idx, segStats)
}

// discoverProperties returns every predicate of SE that carries a literal
// value for at least one training external, sorted ("all if no
// selection").
func discoverProperties(ts TrainingSet, se *rdf.Graph) []rdf.Term {
	set := map[rdf.Term]struct{}{}
	for _, link := range ts.Links {
		se.Match(link.External, rdf.Term{}, rdf.Term{}, func(t rdf.Triple) bool {
			if t.O.IsLiteral() {
				set[t.P] = struct{}{}
			}
			return true
		})
	}
	out := make([]rdf.Term, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// mostSpecificClasses returns the most-specific asserted classes of item
// in sl, per the ontology. Types missing from the ontology are kept as-is
// (the paper's data is assumed conformant, but we degrade gracefully).
func mostSpecificClasses(item rdf.Term, sl *rdf.Graph, ol *ontology.Ontology) []rdf.Term {
	types := sl.TypesOf(item)
	if len(types) == 0 {
		return nil
	}
	if ol == nil {
		return types
	}
	known := types[:0:0]
	var unknown []rdf.Term
	for _, t := range types {
		if ol.Has(t) {
			known = append(known, t)
		} else {
			unknown = append(unknown, t)
		}
	}
	out := ol.MostSpecific(known)
	out = append(out, unknown...)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// TrueClasses exposes the most-specific classes recorded for the i-th
// training link; evaluation uses it to score decisions without re-deriving
// types.
func (m *Model) TrueClasses(i int) []rdf.Term {
	if m.index == nil || i < 0 || i >= len(m.index.facts) {
		return nil
	}
	return m.index.facts[i].classes
}

// TrainingLink returns the i-th deduplicated training link.
func (m *Model) TrainingLink(i int) Link {
	return m.index.facts[i].link
}

// TrainingSize returns the number of deduplicated training links.
func (m *Model) TrainingSize() int { return len(m.index.facts) }

// SegmentsOf returns the recorded segments of training link i for
// property p (nil when none).
func (m *Model) SegmentsOf(i int, p rdf.Term) []string {
	if m.index == nil || i < 0 || i >= len(m.index.facts) {
		return nil
	}
	set := m.index.facts[i].segs[p]
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// ClassFrequency returns how many training links carry class c on their
// local side.
func (m *Model) ClassFrequency(c rdf.Term) int {
	if m.index == nil {
		return 0
	}
	return m.index.classOf[c]
}
