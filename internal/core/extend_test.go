package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func TestExtendAddsRules(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	// Learn on the first 7 links only (missing the ceramic capacitors).
	partial := TrainingSet{Links: ts.Links[:7]}
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1, Properties: []rdf.Term{pnProp}}, partial, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	hasCer := false
	for _, r := range m.Rules.Rules {
		if r.Class == clsCer {
			hasCer = true
		}
	}
	if hasCer {
		t.Fatal("precondition: partial model must not know ceramic capacitors")
	}
	m2, err := m.Extend(ts.Links[7:], se, sl, ol)
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	findRule(t, m2.Rules, "CER", clsCer)
	if m2.Stats.TSSize != 10 {
		t.Errorf("extended TSSize = %d", m2.Stats.TSSize)
	}
	// Original model untouched.
	if m.Stats.TSSize != 7 {
		t.Errorf("original model mutated: TSSize = %d", m.Stats.TSSize)
	}
}

func TestExtendIgnoresDuplicates(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	m2, err := m.Extend(ts.Links[:3], se, sl, ol)
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if m2.Stats.TSSize != m.Stats.TSSize {
		t.Errorf("duplicates changed TSSize: %d vs %d", m2.Stats.TSSize, m.Stats.TSSize)
	}
	if m2.Rules.Len() != m.Rules.Len() {
		t.Errorf("duplicates changed rules: %d vs %d", m2.Rules.Len(), m.Rules.Len())
	}
}

func TestExtendRejectsBadLinks(t *testing.T) {
	ts, se, sl, ol := fixture(t)
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	bad := []Link{{External: rdf.NewLiteral("x"), Local: iri("loc/x")}}
	if _, err := m.Extend(bad, se, sl, ol); err == nil {
		t.Error("literal endpoint accepted by Extend")
	}
}

// Property: Extend(batch2) after Learn(batch1) produces exactly the same
// rules and statistics as Learn(batch1 ∪ batch2).
func TestExtendEquivalentToRelearn(t *testing.T) {
	f := func(seed int64, splitRaw uint8) bool {
		ts, se, sl, ol := randomWorld(seed, 60)
		split := int(splitRaw)%40 + 10
		first := TrainingSet{Links: ts.Links[:split]}

		base, err := Learn(LearnerConfig{SupportThreshold: 0.05, Properties: []rdf.Term{pnProp}}, first, se, sl, ol)
		if err != nil {
			return false
		}
		extended, err := base.Extend(ts.Links[split:], se, sl, ol)
		if err != nil {
			return false
		}
		full, err := Learn(LearnerConfig{SupportThreshold: 0.05, Properties: []rdf.Term{pnProp}}, ts, se, sl, ol)
		if err != nil {
			return false
		}
		if extended.Stats != full.Stats {
			return false
		}
		if extended.Rules.Len() != full.Rules.Len() {
			return false
		}
		for i := range full.Rules.Rules {
			if extended.Rules.Rules[i] != full.Rules.Rules[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(67))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSortLinksDeterministic(t *testing.T) {
	links := []Link{
		{External: iri("b"), Local: iri("2")},
		{External: iri("a"), Local: iri("2")},
		{External: iri("a"), Local: iri("1")},
	}
	sortLinks(links)
	if links[0].External != iri("a") || links[0].Local != iri("1") {
		t.Errorf("sortLinks order: %v", links)
	}
}
