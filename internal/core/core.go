// Package core implements the paper's contribution: learning value-based
// classification rules
//
//	p(X,Y) ∧ subsegment(Y,a) ⇒ c(X)
//
// from a training set of expert-validated same-as links between an
// external RDF source SE (schema unknown) and a local source SL described
// by an ontology OL, then applying the rules to predict the classes of new
// external items so that the linking space shrinks from |SE| × |SL| to a
// union of per-class subspaces.
//
// The package provides:
//
//   - TrainingSet / Link: the expert same-as links with provenance.
//   - Learner (Algorithm 1 of the paper): frequent-conjunction mining over
//     property segments and most-specific classes, with support threshold
//     th.
//   - Rule / RuleSet: learned rules carrying support, confidence and lift,
//     ordered the way the paper ranks subspaces (confidence desc, then
//     lift desc).
//   - Classifier: applies a rule set to an external item and produces the
//     ranked, deduplicated class predictions and linking subspaces.
//   - Generalize: the paper's future-work extension lifting leaf rules to
//     superclasses through the ontology.
package core

import (
	"errors"
	"fmt"

	"repro/internal/rdf"
)

// Link is one validated owl:sameAs link between an external data item
// (from SE) and a local data item (from SL). The direction is part of the
// provenance the paper assumes is stored with the links.
type Link struct {
	External rdf.Term
	Local    rdf.Term
}

// TrainingSet is the set TS of validated links the rules are learned
// from. Order is irrelevant; duplicates are tolerated by Dedup.
type TrainingSet struct {
	Links []Link
}

// Len returns |TS|.
func (ts TrainingSet) Len() int { return len(ts.Links) }

// Dedup returns a copy of ts with exact duplicate links removed,
// preserving first occurrence order.
func (ts TrainingSet) Dedup() TrainingSet {
	seen := make(map[Link]struct{}, len(ts.Links))
	out := make([]Link, 0, len(ts.Links))
	for _, l := range ts.Links {
		if _, dup := seen[l]; dup {
			continue
		}
		seen[l] = struct{}{}
		out = append(out, l)
	}
	return TrainingSet{Links: out}
}

// Validate checks that every link has IRI or blank endpoints.
func (ts TrainingSet) Validate() error {
	for i, l := range ts.Links {
		if l.External.IsZero() || l.External.IsLiteral() {
			return fmt.Errorf("core: link %d: external endpoint %v is not a resource", i, l.External)
		}
		if l.Local.IsZero() || l.Local.IsLiteral() {
			return fmt.Errorf("core: link %d: local endpoint %v is not a resource", i, l.Local)
		}
	}
	return nil
}

// FromGraph extracts a training set from the owl:sameAs triples of g,
// treating subjects as external items and objects as local items (the
// provenance convention used throughout this repository).
func FromGraph(g *rdf.Graph) TrainingSet {
	var ts TrainingSet
	g.Match(rdf.Term{}, rdf.SameAsTerm, rdf.Term{}, func(t rdf.Triple) bool {
		if !t.O.IsLiteral() {
			ts.Links = append(ts.Links, Link{External: t.S, Local: t.O})
		}
		return true
	})
	return ts
}

// ToGraph serializes the training set as owl:sameAs triples.
func (ts TrainingSet) ToGraph() *rdf.Graph {
	g := rdf.NewGraph()
	for _, l := range ts.Links {
		g.Add(rdf.T(l.External, rdf.SameAsTerm, l.Local))
	}
	return g
}

// ErrEmptyTrainingSet reports learning over an empty TS.
var ErrEmptyTrainingSet = errors.New("core: empty training set")
