package core

import (
	"repro/internal/ontology"
	"repro/internal/rdf"
)

// GeneralizeOptions tunes the subsumption-based rule generalization, the
// paper's stated future work ("infer more general rules by exploiting the
// semantics of the subsumption between classes of the ontology", §6).
type GeneralizeOptions struct {
	// MinChildRules is the minimum number of sibling leaf rules sharing
	// the same (property, segment) required before their common parent
	// gets a generalized rule; 0 means 2.
	MinChildRules int
	// MinConfidence discards generalized rules below this confidence;
	// 0 keeps all.
	MinConfidence float64
	// ReplaceChildren removes the child rules a generalized rule was
	// built from, producing a more concise rule set; otherwise the
	// generalized rules are added alongside.
	ReplaceChildren bool
}

func (o GeneralizeOptions) withDefaults() GeneralizeOptions {
	if o.MinChildRules == 0 {
		o.MinChildRules = 2
	}
	return o
}

// Generalize lifts learned rules to superclasses: when several rules with
// the same premise (property, segment) conclude on sibling classes, a
// rule concluding on their common parent is synthesized with measures
// recomputed over the retained training index (so its counts are exact,
// not approximations from the children). The returned set is sorted.
func (m *Model) Generalize(ol *ontology.Ontology, opts GeneralizeOptions) RuleSet {
	opts = opts.withDefaults()
	out := RuleSet{}
	if m.index == nil || ol == nil {
		out.Rules = append(out.Rules, m.Rules.Rules...)
		out.Sort()
		return out
	}

	// Group child rules by premise, then by candidate parent class.
	type group struct {
		premise  propertySegment
		parent   rdf.Term
		children map[rdf.Term]struct{}
	}
	groups := map[propertySegment]map[rdf.Term]*group{}
	for _, r := range m.Rules.Rules {
		ps := propertySegment{r.Property, r.Segment}
		for _, parent := range ol.Parents(r.Class) {
			byParent := groups[ps]
			if byParent == nil {
				byParent = map[rdf.Term]*group{}
				groups[ps] = byParent
			}
			g := byParent[parent]
			if g == nil {
				g = &group{premise: ps, parent: parent, children: map[rdf.Term]struct{}{}}
				byParent[parent] = g
			}
			g.children[r.Class] = struct{}{}
		}
	}

	replaced := map[rdf.Term]map[propertySegment]struct{}{}
	var generalized []Rule
	for ps, byParent := range groups {
		for parent, g := range byParent {
			if len(g.children) < opts.MinChildRules {
				continue
			}
			r := m.ruleForClass(ps, parent, ol)
			if r.JointCount == 0 {
				continue
			}
			if opts.MinConfidence > 0 && r.Confidence() < opts.MinConfidence {
				continue
			}
			generalized = append(generalized, r)
			if opts.ReplaceChildren {
				for child := range g.children {
					if replaced[child] == nil {
						replaced[child] = map[propertySegment]struct{}{}
					}
					replaced[child][ps] = struct{}{}
				}
			}
		}
	}

	for _, r := range m.Rules.Rules {
		if set, ok := replaced[r.Class]; ok {
			if _, drop := set[propertySegment{r.Property, r.Segment}]; drop {
				continue
			}
		}
		out.Rules = append(out.Rules, r)
	}
	out.Rules = append(out.Rules, generalized...)
	out.Sort()
	return out
}

// ruleForClass recomputes exact counts for the rule premise ⇒ cls where
// cls may be an inner class: a link satisfies the conclusion when any of
// its most-specific classes is subsumed by cls.
func (m *Model) ruleForClass(ps propertySegment, cls rdf.Term, ol *ontology.Ontology) Rule {
	premise, joint, classCnt := 0, 0, 0
	for _, lf := range m.index.facts {
		inPremise := false
		if set, ok := lf.segs[ps.property]; ok {
			_, inPremise = set[ps.segment]
		}
		inClass := false
		for _, c := range lf.classes {
			if ol.Subsumes(cls, c) {
				inClass = true
				break
			}
		}
		if inPremise {
			premise++
		}
		if inClass {
			classCnt++
		}
		if inPremise && inClass {
			joint++
		}
	}
	return Rule{
		Property:     ps.property,
		Segment:      ps.segment,
		Class:        cls,
		PremiseCount: premise,
		JointCount:   joint,
		ClassCount:   classCnt,
		TSSize:       len(m.index.facts),
		Generalized:  true,
	}
}

// GeneralizationReport compares a base rule set with its generalized
// variant for the E6 ablation.
type GeneralizationReport struct {
	BaseRules        int
	GeneralizedRules int
	// AddedParentRules counts rules marked Generalized in the output.
	AddedParentRules int
	// CompressionRatio is GeneralizedRules / BaseRules (< 1 when
	// ReplaceChildren shrinks the set).
	CompressionRatio float64
}

// CompareGeneralization summarizes base vs generalized rule sets.
func CompareGeneralization(base, gen *RuleSet) GeneralizationReport {
	added := 0
	for _, r := range gen.Rules {
		if r.Generalized {
			added++
		}
	}
	ratio := 0.0
	if base.Len() > 0 {
		ratio = float64(gen.Len()) / float64(base.Len())
	}
	return GeneralizationReport{
		BaseRules:        base.Len(),
		GeneralizedRules: gen.Len(),
		AddedParentRules: added,
		CompressionRatio: ratio,
	}
}
