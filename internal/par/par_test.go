package par

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestMapChunksDeterminism pins the core guarantee: every worker count
// returns exactly the serial filter-map output, in input order.
func TestMapChunksDeterminism(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	keepOdd := func(v int) (int, bool) { return v * 3, v%2 == 1 }
	want, err := MapChunks(context.Background(), 1, 16, items, keepOdd)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 500 {
		t.Fatalf("serial kept %d items, want 500", len(want))
	}
	for _, workers := range []int{0, 2, 3, 7, 16, 100} {
		got, err := MapChunks(context.Background(), workers, 16, items, keepOdd)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d output differs from serial", workers)
		}
	}
}

// TestMapChunksSmallInputs covers empty and sub-chunk inputs, which take
// the serial fast path regardless of the worker count.
func TestMapChunksSmallInputs(t *testing.T) {
	if got, err := MapChunks(context.Background(), 8, 64, nil, func(v int) (int, bool) { return v, true }); err != nil || len(got) != 0 {
		t.Fatalf("empty input: got %v, %v", got, err)
	}
	got, err := MapChunks(context.Background(), 8, 64, []int{1, 2, 3}, func(v int) (int, bool) { return v, true })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("sub-chunk input: got %v", got)
	}
}

// TestMapChunksNilContext treats nil like context.Background().
func TestMapChunksNilContext(t *testing.T) {
	got, err := MapChunks[int, int](nil, 4, 2, []int{1, 2, 3, 4, 5}, func(v int) (int, bool) { return v, true })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
}

// TestMapChunksCancellation asserts that a cancelled context aborts the
// fan-out with ctx.Err() and a nil result, both on the parallel and the
// serial path.
func TestMapChunksCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 10000)
	var calls atomic.Int64
	fn := func(v int) (int, bool) {
		if calls.Add(1) == 10 {
			cancel()
		}
		return v, true
	}
	got, err := MapChunks(ctx, 4, 8, items, fn)
	if err != context.Canceled {
		t.Fatalf("parallel: err = %v, want context.Canceled", err)
	}
	if got != nil {
		t.Fatalf("parallel: got %d results after cancellation, want nil", len(got))
	}
	if n := calls.Load(); n >= int64(len(items)) {
		t.Fatalf("parallel: all %d items processed despite cancellation", n)
	}

	calls.Store(0)
	ctx2, cancel2 := context.WithCancel(context.Background())
	fn2 := func(v int) (int, bool) {
		if calls.Add(1) == 10 {
			cancel2()
		}
		return v, true
	}
	if _, err := MapChunks(ctx2, 1, 8, items, fn2); err != context.Canceled {
		t.Fatalf("serial: err = %v, want context.Canceled", err)
	}
}

// TestWorkers pins the resolution rule.
func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("positive count must pass through")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("non-positive counts must resolve to at least one worker")
	}
}
