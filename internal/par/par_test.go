package par

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestMapChunksDeterminism pins the core guarantee: every worker count
// returns exactly the serial filter-map output, in input order.
func TestMapChunksDeterminism(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	keepOdd := func(v int) (int, bool) { return v * 3, v%2 == 1 }
	want, err := MapChunks(context.Background(), 1, 16, items, keepOdd)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 500 {
		t.Fatalf("serial kept %d items, want 500", len(want))
	}
	for _, workers := range []int{0, 2, 3, 7, 16, 100} {
		got, err := MapChunks(context.Background(), workers, 16, items, keepOdd)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d output differs from serial", workers)
		}
	}
}

// TestMapChunksSmallInputs covers empty and sub-chunk inputs, which take
// the serial fast path regardless of the worker count.
func TestMapChunksSmallInputs(t *testing.T) {
	if got, err := MapChunks(context.Background(), 8, 64, nil, func(v int) (int, bool) { return v, true }); err != nil || len(got) != 0 {
		t.Fatalf("empty input: got %v, %v", got, err)
	}
	got, err := MapChunks(context.Background(), 8, 64, []int{1, 2, 3}, func(v int) (int, bool) { return v, true })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("sub-chunk input: got %v", got)
	}
}

// TestMapChunksNilContext treats nil like context.Background().
func TestMapChunksNilContext(t *testing.T) {
	got, err := MapChunks[int, int](nil, 4, 2, []int{1, 2, 3, 4, 5}, func(v int) (int, bool) { return v, true })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
}

// TestMapChunksCancellation asserts that a cancelled context aborts the
// fan-out with ctx.Err() and a nil result, both on the parallel and the
// serial path.
func TestMapChunksCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 10000)
	var calls atomic.Int64
	fn := func(v int) (int, bool) {
		if calls.Add(1) == 10 {
			cancel()
		}
		return v, true
	}
	got, err := MapChunks(ctx, 4, 8, items, fn)
	if err != context.Canceled {
		t.Fatalf("parallel: err = %v, want context.Canceled", err)
	}
	if got != nil {
		t.Fatalf("parallel: got %d results after cancellation, want nil", len(got))
	}
	if n := calls.Load(); n >= int64(len(items)) {
		t.Fatalf("parallel: all %d items processed despite cancellation", n)
	}

	calls.Store(0)
	ctx2, cancel2 := context.WithCancel(context.Background())
	fn2 := func(v int) (int, bool) {
		if calls.Add(1) == 10 {
			cancel2()
		}
		return v, true
	}
	if _, err := MapChunks(ctx2, 1, 8, items, fn2); err != context.Canceled {
		t.Fatalf("serial: err = %v, want context.Canceled", err)
	}
}

// TestReduceChunksDeterminism pins that a commutative reduction (count
// by key) merged in chunk order equals the serial fold at every worker
// count.
func TestReduceChunksDeterminism(t *testing.T) {
	items := make([]int, 1200)
	for i := range items {
		items[i] = i % 37
	}
	newAcc := func() map[int]int { return map[int]int{} }
	fold := func(a map[int]int, v int) map[int]int { a[v]++; return a }
	merge := func(a, b map[int]int) map[int]int {
		for k, n := range b {
			a[k] += n
		}
		return a
	}
	want, err := ReduceChunks(context.Background(), 1, 16, items, newAcc, fold, merge)
	if err != nil {
		t.Fatal(err)
	}
	if want[0] == 0 {
		t.Fatal("serial fold produced an empty accumulator")
	}
	for _, workers := range []int{0, 2, 3, 7, 16, 100} {
		got, err := ReduceChunks(context.Background(), workers, 16, items, newAcc, fold, merge)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d accumulator differs from serial", workers)
		}
	}
}

// TestReduceChunksOrderedMerge uses a non-commutative merge (slice
// concatenation) to prove accumulators are merged strictly in chunk
// order, i.e. the parallel reduce preserves input order end to end.
func TestReduceChunksOrderedMerge(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	newAcc := func() []int { return nil }
	fold := func(a []int, v int) []int { return append(a, v) }
	merge := func(a, b []int) []int { return append(a, b...) }
	got, err := ReduceChunks(context.Background(), 8, 16, items, newAcc, fold, merge)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, items) {
		t.Fatalf("merged order differs from input order")
	}
}

// TestReduceChunksCancellation asserts a cancelled context aborts the
// reduce with ctx.Err() and the zero accumulator on both paths.
func TestReduceChunksCancellation(t *testing.T) {
	items := make([]int, 10000)
	var calls atomic.Int64
	run := func(workers int) {
		t.Helper()
		calls.Store(0)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		fold := func(a int, v int) int {
			if calls.Add(1) == 10 {
				cancel()
			}
			return a + 1
		}
		got, err := ReduceChunks(ctx, workers, 8, items, func() int { return 0 }, fold, func(a, b int) int { return a + b })
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got != 0 {
			t.Fatalf("workers=%d: got %d, want zero accumulator after cancellation", workers, got)
		}
		if n := calls.Load(); n >= int64(len(items)) {
			t.Fatalf("workers=%d: all %d items folded despite cancellation", workers, n)
		}
	}
	run(4)
	run(1)
}

// TestWorkers pins the resolution rule.
func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("positive count must pass through")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("non-positive counts must resolve to at least one worker")
	}
}
