// Package par provides the chunked work-stealing scaffold shared by the
// parallel hot paths of this repository (the linkage engine, the blocking
// baselines, and the service layer).
//
// The model is deliberately simple: a slice of items is cut into
// fixed-size chunks, an atomic cursor hands chunk indices to idle worker
// goroutines, each chunk's results land in a dedicated slot, and the
// slots are concatenated in chunk order. Because the concatenation order
// is the input order, the output is exactly what the serial loop would
// produce — parallelism never changes results, only wall time.
//
// Cancellation is cooperative: workers observe the context between
// chunks, so a cancelled context stops the fan-out within one chunk of
// work per worker.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultChunk is the chunk size used when a caller passes chunk <= 0.
// Small enough that uneven per-item costs still balance across workers,
// large enough that the atomic cursor is not contended.
const DefaultChunk = 64

// Workers resolves a worker-count setting: n > 0 is used as-is, anything
// else means runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// MapChunks applies fn to every item, keeping the results fn reports true
// for, preserving input order in the output. With workers > 1 and more
// than one chunk of items the work fans out across goroutines; output is
// identical for every worker count.
//
// A nil ctx or context.Background() disables cancellation. When ctx is
// cancelled mid-run the already-claimed chunks finish, the remaining
// chunks are skipped, and ctx.Err() is returned with a nil slice.
func MapChunks[T, R any](ctx context.Context, workers, chunk int, items []T, fn func(T) (R, bool)) ([]R, error) {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	workers = Workers(workers)
	if workers == 1 || len(items) <= chunk {
		var out []R
		for i, it := range items {
			// Poll at chunk granularity so serial cancellation matches the
			// parallel path's responsiveness.
			if ctx != nil && i%chunk == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if r, ok := fn(it); ok {
				out = append(out, r)
			}
		}
		return out, nil
	}
	nChunks := (len(items) + chunk - 1) / chunk
	if workers > nChunks {
		workers = nChunks
	}
	results := make([][]R, nChunks)
	var cursor atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx != nil && ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				c := int(cursor.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > len(items) {
					hi = len(items)
				}
				var rs []R
				for _, it := range items[lo:hi] {
					if r, ok := fn(it); ok {
						rs = append(rs, r)
					}
				}
				results[c] = rs
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	total := 0
	for _, rs := range results {
		total += len(rs)
	}
	if total == 0 {
		// Match the serial path, which returns a nil slice when nothing
		// is kept, so callers comparing outputs across worker counts see
		// identical values.
		return nil, nil
	}
	out := make([]R, 0, total)
	for _, rs := range results {
		out = append(out, rs...)
	}
	return out, nil
}

// ReduceChunks folds items into per-chunk accumulators in parallel and
// merges the accumulators in chunk order: newAcc creates an empty
// accumulator, fold absorbs one item and returns the (possibly
// replaced) accumulator, merge absorbs the right accumulator into the
// left and returns the result. Because chunks cover the input in order
// and the merge runs left-to-right over the chunk sequence, any fold
// whose merge is associative over ordered chunks produces exactly the
// serial fold's result — and commutative reductions (counting maps,
// sums) are deterministic at every worker count by construction.
//
// Cancellation follows MapChunks: when ctx is cancelled mid-run,
// claimed chunks finish, the rest are skipped, and ctx.Err() is
// returned with the zero accumulator.
func ReduceChunks[T, A any](ctx context.Context, workers, chunk int, items []T, newAcc func() A, fold func(A, T) A, merge func(A, A) A) (A, error) {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	workers = Workers(workers)
	if workers == 1 || len(items) <= chunk {
		acc := newAcc()
		for i, it := range items {
			if ctx != nil && i%chunk == 0 {
				if err := ctx.Err(); err != nil {
					var zero A
					return zero, err
				}
			}
			acc = fold(acc, it)
		}
		return acc, nil
	}
	nChunks := (len(items) + chunk - 1) / chunk
	if workers > nChunks {
		workers = nChunks
	}
	accs := make([]A, nChunks)
	var cursor atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx != nil && ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				c := int(cursor.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > len(items) {
					hi = len(items)
				}
				acc := newAcc()
				for _, it := range items[lo:hi] {
					acc = fold(acc, it)
				}
				accs[c] = acc
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		var zero A
		return zero, ctx.Err()
	}
	out := accs[0]
	for c := 1; c < nChunks; c++ {
		out = merge(out, accs[c])
	}
	return out, nil
}
