// Package datalink is the public API of this repository: a Go
// implementation of "Classification rule learning for data linking"
// (Pernelle & Saïs, LWDM @ EDBT 2012).
//
// The library learns value-based classification rules
//
//	p(X,Y) ∧ subsegment(Y,a) ⇒ c(X)
//
// from expert-validated same-as links between an external RDF source
// (schema unknown) and a local catalog described by an OWL ontology, then
// uses the rules to predict the classes of new external items so a
// linking method only compares them against instances of the predicted
// classes — shrinking the linking space from |SE| × |SL| to a union of
// small, confidence-ranked subspaces.
//
// # Layout
//
// The root package re-exports the stable surface of the internal layers:
//
//   - RDF model and I/O (terms, triples, graphs, N-Triples, Turtle)
//   - ontologies (class hierarchies with subsumption)
//   - rule learning (Algorithm 1 of the paper), classification, linking
//     subspaces and the subsumption-generalization extension
//   - value segmentation (separator and n-gram splitters)
//   - similarity measures and the in-space linking engine
//   - blocking baselines from the paper's related work
//   - the experiment harness regenerating the paper's Table 1 and the
//     Section 5 statistics
//   - the synthetic corpus generator standing in for the proprietary
//     Thales catalog (see DESIGN.md for the substitution argument)
//
// Start with Pipeline for the end-to-end flow, or see examples/.
package datalink

import (
	"io"

	"repro/internal/ontology"
	"repro/internal/rdf"
)

// Term is an RDF term (IRI, literal or blank node); a comparable value
// type usable as a map key.
type Term = rdf.Term

// Triple is an RDF triple.
type Triple = rdf.Triple

// Graph is an indexed in-memory RDF store.
type Graph = rdf.Graph

// Ontology is a class hierarchy with subsumption and disjointness.
type Ontology = ontology.Ontology

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return rdf.NewIRI(iri) }

// NewLiteral returns a plain literal term.
func NewLiteral(lexical string) Term { return rdf.NewLiteral(lexical) }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lexical, datatype string) Term {
	return rdf.NewTypedLiteral(lexical, datatype)
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lexical, lang string) Term { return rdf.NewLangLiteral(lexical, lang) }

// NewBlank returns a blank node term.
func NewBlank(label string) Term { return rdf.NewBlank(label) }

// T constructs a triple.
func T(s, p, o Term) Triple { return rdf.T(s, p, o) }

// NewGraph returns an empty graph.
func NewGraph() *Graph { return rdf.NewGraph() }

// ReadNTriples parses N-Triples into a new graph.
func ReadNTriples(r io.Reader) (*Graph, error) { return rdf.ReadNTriples(r) }

// WriteNTriples serializes a graph as N-Triples in deterministic order.
func WriteNTriples(w io.Writer, g *Graph) error { return rdf.WriteNTriples(w, g) }

// ReadTurtle parses the supported Turtle subset into a new graph.
func ReadTurtle(r io.Reader) (*Graph, error) { return rdf.ReadTurtle(r) }

// Well-known vocabulary terms.
var (
	// RDFType is rdf:type.
	RDFType = rdf.TypeTerm
	// RDFSLabel is rdfs:label.
	RDFSLabel = rdf.LabelTerm
	// RDFSSubClassOf is rdfs:subClassOf.
	RDFSSubClassOf = rdf.SubClassOfTerm
	// OWLSameAs is owl:sameAs.
	OWLSameAs = rdf.SameAsTerm
	// OWLClass is owl:Class.
	OWLClass = rdf.ClassTerm
)

// NewOntology returns an empty ontology.
func NewOntology() *Ontology { return ontology.New() }

// OntologyFromGraph builds an ontology from the owl:Class,
// rdfs:subClassOf, rdfs:label and owl:disjointWith triples of g,
// rejecting cyclic hierarchies.
func OntologyFromGraph(g *Graph) (*Ontology, error) { return ontology.FromGraph(g) }
