package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	datalink "repro"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/similarity"
	"repro/internal/store"
)

// cmdBench runs the benchmark corpus end-to-end through the real
// service stack — durable store, resilience middleware, HTTP handlers,
// learner, link engine — and writes a machine-readable report with a
// stable schema ("linkrules-bench/1"). Committing one report per PR
// gives the repo a perf trajectory that regressions show up in:
//
//	upsert  corpus ingest through POST /v1/items/upsert (items/s)
//	learn   POST /v1/learn over the training links (wall seconds)
//	link    repeated POST /v1/link queries (p50/p99 latency, qps)
//	wal     append count/bytes/rate observed by the store instruments
//	ingest  the same corpus loaded one item per request vs one
//	        streaming bulk request, both at fsync=always (items/s
//	        each, and the speedup)
//
// The store lives in a throwaway directory; -fsync picks the WAL
// policy the mutation phases pay for. -smoke shrinks the corpus and
// iteration counts so CI can run the whole thing in seconds.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	out := fs.String("out", "BENCH_10.json", "report file (- writes to stdout)")
	smoke := fs.Bool("smoke", false, "tiny corpus and few iterations, for CI smoke runs")
	queries := fs.Int("queries", 200, "timed link queries")
	batch := fs.Int("batch", 64, "items per upsert request")
	bulkBatch := fs.Int("bulk-batch", 1000, "items per batch commit in the ingest phase's bulk run")
	fsyncMode := fs.String("fsync", "interval", "WAL fsync policy paid by the upsert/learn phases: never, interval or always (the ingest comparison always runs durable)")
	topK := fs.Int("top", 3, "matches requested per item in link queries")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *smoke {
		if cf.scale == "paper" {
			cf.scale = "small"
		}
		if cf.links == 0 {
			cf.links = 150
		}
		if cf.catalog == 0 {
			cf.catalog = 500
		}
		if *queries == 200 {
			*queries = 30
		}
	}
	mode, err := store.ParseFsyncMode(*fsyncMode)
	if err != nil {
		return err
	}
	if *batch < 1 || *queries < 1 || *bulkBatch < 1 {
		return fmt.Errorf("-batch, -queries and -bulk-batch must be positive")
	}

	cfg, err := cf.config()
	if err != nil {
		return err
	}
	ds, err := datalink.GenerateCorpus(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "linkrules bench: %s corpus, seed %d (SE %d, SL %d triples, |TS| %d)\n",
		cf.scale, cf.seed, ds.External.Len(), ds.Local.Len(), ds.Training.Len())

	dir, err := os.MkdirTemp("", "linkrules-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	reg := obs.NewRegistry()
	sm := store.NewMetrics(reg)
	st, rec, err := store.Open(dir, store.Options{
		Fsync:         mode,
		SnapshotEvery: -1, // no auto-checkpoints: the WAL numbers stay pure append cost
		Metrics:       sm,
	})
	if err != nil {
		return err
	}
	// The external side starts empty: the upsert phase ingests the whole
	// external corpus through the HTTP handler, exactly like a client.
	seed := &service.Seed{External: datalink.NewGraph(), Local: ds.Local, Ontology: ds.Ontology}
	opts := service.Options{
		Learner:       datalink.LearnerConfig{SupportThreshold: cf.th},
		DefaultLinker: datalink.DefaultLinkingConfig(),
		Metrics:       reg,
	}
	svc, err := service.Restore(st, rec, seed, opts)
	if err != nil {
		st.Close()
		return err
	}
	defer svc.Close()
	h := svc.Handler()

	rep := benchReport{
		Schema:    "linkrules-bench/1",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Smoke:     *smoke,
		Corpus: benchCorpus{
			Scale:           cf.scale,
			Seed:            cf.seed,
			TrainingLinks:   ds.Training.Len(),
			ExternalItems:   len(ds.External.AllSubjects()),
			ExternalTriples: ds.External.Len(),
			LocalTriples:    ds.Local.Len(),
		},
	}

	// Phase 1: upsert throughput.
	specs := externalItemSpecs(ds.External)
	mutStart := time.Now()
	t0 := time.Now()
	batches := 0
	for i := 0; i < len(specs); i += *batch {
		end := min(i+*batch, len(specs))
		body, err := json.Marshal(map[string]any{"side": "external", "items": specs[i:end]})
		if err != nil {
			return err
		}
		if _, err := call(h, "POST", "/v1/items/upsert", body); err != nil {
			return fmt.Errorf("upsert batch %d: %w", batches, err)
		}
		batches++
	}
	upsertSec := time.Since(t0).Seconds()
	rep.Upsert = benchUpsert{
		Items:       len(specs),
		Batches:     batches,
		BatchSize:   *batch,
		Seconds:     upsertSec,
		ItemsPerSec: rate(float64(len(specs)), upsertSec),
	}
	fmt.Fprintf(os.Stderr, "linkrules bench: upsert %d items in %d batches: %.3fs (%.0f items/s)\n",
		len(specs), batches, upsertSec, rep.Upsert.ItemsPerSec)

	// Phase 2: learn time.
	links := make([]map[string]string, 0, ds.Training.Len())
	for _, l := range ds.Training.Links {
		links = append(links, map[string]string{"external": l.External.Value, "local": l.Local.Value})
	}
	body, err := json.Marshal(map[string]any{"links": links})
	if err != nil {
		return err
	}
	t0 = time.Now()
	learnResp, err := call(h, "POST", "/v1/learn", body)
	if err != nil {
		return fmt.Errorf("learn: %w", err)
	}
	learnSec := time.Since(t0).Seconds()
	mutSec := time.Since(mutStart).Seconds()
	var learned struct {
		Rules int `json:"rules"`
	}
	if err := json.Unmarshal(learnResp, &learned); err != nil {
		return fmt.Errorf("learn response: %w", err)
	}
	rep.Learn = benchLearn{Links: len(links), Rules: learned.Rules, Seconds: learnSec}
	fmt.Fprintf(os.Stderr, "linkrules bench: learn %d links -> %d rules: %.3fs\n",
		len(links), learned.Rules, learnSec)

	// Phase 3: link query latency. Each query asks for a deterministic
	// slice of external items so runs are comparable across machines.
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	perQuery := min(16, len(ids))
	linkBodies := make([][]byte, *queries)
	for q := range linkBodies {
		items := make([]string, perQuery)
		for j := range items {
			items[j] = ids[(q*31+j*7)%len(ids)]
		}
		if linkBodies[q], err = json.Marshal(map[string]any{"items": items, "top_k": *topK}); err != nil {
			return err
		}
	}
	for w := 0; w < min(3, *queries); w++ { // warm the engine caches
		if _, err := call(h, "POST", "/v1/link", linkBodies[w]); err != nil {
			return fmt.Errorf("link warmup: %w", err)
		}
	}
	durs := make([]float64, *queries)
	t0 = time.Now()
	for q := range durs {
		q0 := time.Now()
		if _, err := call(h, "POST", "/v1/link", linkBodies[q]); err != nil {
			return fmt.Errorf("link query %d: %w", q, err)
		}
		durs[q] = time.Since(q0).Seconds() * 1e3
	}
	linkSec := time.Since(t0).Seconds()
	sort.Float64s(durs)
	rep.Link = benchLink{
		Queries:       *queries,
		ItemsPerQuery: perQuery,
		TopK:          *topK,
		P50Ms:         percentile(durs, 50),
		P99Ms:         percentile(durs, 99),
		MeanMs:        mean(durs),
		QPS:           rate(float64(*queries), linkSec),
	}
	fmt.Fprintf(os.Stderr, "linkrules bench: %d link queries x %d items: p50 %.2fms p99 %.2fms (%.1f qps)\n",
		*queries, perQuery, rep.Link.P50Ms, rep.Link.P99Ms, rep.Link.QPS)

	// Phase 4: WAL append rate over the mutation phases, read from the
	// same instruments /metrics exports.
	rep.WAL = benchWAL{
		Fsync:         mode.String(),
		Appends:       sm.AppendsTotal.Value(),
		Bytes:         sm.AppendBytesTotal.Value(),
		Seconds:       mutSec,
		AppendsPerSec: rate(float64(sm.AppendsTotal.Value()), mutSec),
		MBPerSec:      rate(float64(sm.AppendBytesTotal.Value())/(1<<20), mutSec),
	}
	fmt.Fprintf(os.Stderr, "linkrules bench: wal %d appends, %d bytes (fsync %s): %.0f appends/s\n",
		rep.WAL.Appends, rep.WAL.Bytes, rep.WAL.Fsync, rep.WAL.AppendsPerSec)

	// Phase 5: ingest path comparison — the same corpus loaded one item
	// per request vs one streaming bulk request, each into a fresh
	// throwaway service, so the speedup of the batched mutation path is
	// measured end to end. This phase always runs at fsync=always: the
	// batched WAL record exists to amortize the per-commit fsync, so the
	// durable policy is the configuration the comparison is about
	// (per-item pays one fsync per item, bulk one per batch).
	if rep.Ingest, err = benchIngestPhase(specs, store.FsyncAlways, *bulkBatch); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "linkrules bench: ingest %d items: per-item %.0f items/s, bulk %.0f items/s (%d batches of %d) -> %.1fx\n",
		rep.Ingest.Items, rep.Ingest.PerItemPerSec, rep.Ingest.BulkPerSec,
		rep.Ingest.BulkBatches, rep.Ingest.BulkBatch, rep.Ingest.Speedup)

	// Phase 6: similarity kernel microbench — the bit-parallel edit
	// distance the link engine's hot loop now runs, against the plain DP
	// it replaced (kept as the reference oracle), over corpus-derived
	// value pairs.
	rep.Kernel = benchKernelPhase(specs, *smoke)
	fmt.Fprintf(os.Stderr, "linkrules bench: kernel %d pairs: lev %.0f ns/op vs dp %.0f (%.1fx), dam %.0f ns/op vs dp %.0f (%.1fx)\n",
		rep.Kernel.Pairs, rep.Kernel.LevNsPerOp, rep.Kernel.LevDPNsPerOp, rep.Kernel.LevSpeedup,
		rep.Kernel.DamNsPerOp, rep.Kernel.DamDPNsPerOp, rep.Kernel.DamSpeedup)
	fmt.Fprintf(os.Stderr, "linkrules bench: kernel bench pair: lev %.0f ns/op vs dp %.0f (%.1fx), dam %.0f ns/op vs dp %.0f (%.1fx)\n",
		rep.Kernel.BenchPairLevNs, rep.Kernel.BenchPairLevDPNs, rep.Kernel.BenchPairLevSpeedup,
		rep.Kernel.BenchPairDamNs, rep.Kernel.BenchPairDamDPNs, rep.Kernel.BenchPairDamSpeedup)

	// Phase 7: parallel learn — the same in-process Learn at Workers=1
	// vs Workers=NumCPU. The model is byte-identical either way; only
	// wall time may differ, and on a single-CPU host the speedup is
	// honestly ~1.0.
	if rep.LearnParallel, err = benchLearnParallelPhase(ds, cf.th); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "linkrules bench: learn-parallel %d links: 1 worker %.3fs, %d workers %.3fs (%.2fx)\n",
		rep.LearnParallel.Links, rep.LearnParallel.SerialSeconds,
		rep.LearnParallel.Workers, rep.LearnParallel.ParallelSeconds, rep.LearnParallel.Speedup)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "linkrules bench: wrote %s\n", *out)
	return nil
}

// benchReport is the stable machine-readable schema. Only add fields;
// never rename or repurpose existing ones — downstream trajectory
// tooling compares reports across commits by key.
type benchReport struct {
	Schema    string      `json:"schema"`
	Timestamp string      `json:"timestamp"`
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	CPUs      int         `json:"cpus"`
	Smoke     bool        `json:"smoke"`
	Corpus    benchCorpus `json:"corpus"`
	Upsert    benchUpsert `json:"upsert"`
	Learn     benchLearn  `json:"learn"`
	Link      benchLink   `json:"link"`
	WAL       benchWAL    `json:"wal"`
	Ingest    benchIngest `json:"ingest"`
	// Kernel and LearnParallel were added with schema still at /1:
	// additions are allowed, renames are not.
	Kernel        benchKernel        `json:"kernel"`
	LearnParallel benchLearnParallel `json:"learn_parallel"`
}

type benchCorpus struct {
	Scale           string `json:"scale"`
	Seed            int64  `json:"seed"`
	TrainingLinks   int    `json:"training_links"`
	ExternalItems   int    `json:"external_items"`
	ExternalTriples int    `json:"external_triples"`
	LocalTriples    int    `json:"local_triples"`
}

type benchUpsert struct {
	Items       int     `json:"items"`
	Batches     int     `json:"batches"`
	BatchSize   int     `json:"batch_size"`
	Seconds     float64 `json:"seconds"`
	ItemsPerSec float64 `json:"items_per_sec"`
}

type benchLearn struct {
	Links   int     `json:"links"`
	Rules   int     `json:"rules"`
	Seconds float64 `json:"seconds"`
}

type benchLink struct {
	Queries       int     `json:"queries"`
	ItemsPerQuery int     `json:"items_per_query"`
	TopK          int     `json:"top_k"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MeanMs        float64 `json:"mean_ms"`
	QPS           float64 `json:"qps"`
}

type benchWAL struct {
	Fsync         string  `json:"fsync"`
	Appends       uint64  `json:"appends"`
	Bytes         uint64  `json:"bytes"`
	Seconds       float64 `json:"seconds"`
	AppendsPerSec float64 `json:"appends_per_sec"`
	MBPerSec      float64 `json:"mb_per_sec"`
}

type benchIngest struct {
	Items          int     `json:"items"`
	Fsync          string  `json:"fsync"`
	PerItemSeconds float64 `json:"per_item_seconds"`
	PerItemPerSec  float64 `json:"per_item_items_per_sec"`
	BulkBatch      int     `json:"bulk_batch"`
	BulkBatches    int     `json:"bulk_batches"`
	BulkSeconds    float64 `json:"bulk_seconds"`
	BulkPerSec     float64 `json:"bulk_items_per_sec"`
	Speedup        float64 `json:"speedup"`
}

type benchKernel struct {
	Pairs        int     `json:"pairs"`
	Iters        int     `json:"iters"`
	LevNsPerOp   float64 `json:"lev_ns_per_op"`
	LevDPNsPerOp float64 `json:"lev_dp_ns_per_op"`
	LevSpeedup   float64 `json:"lev_speedup"`
	DamNsPerOp   float64 `json:"dam_ns_per_op"`
	DamDPNsPerOp float64 `json:"dam_dp_ns_per_op"`
	DamSpeedup   float64 `json:"dam_speedup"`
	// BenchPair* measure the canonical 16-char part-number pair of
	// BenchmarkLevenshtein/BenchmarkDamerau, so the report is directly
	// comparable to the historical ns/op trajectory of those benchmarks
	// (the corpus pairs above are shorter, which understates the
	// quadratic DP's cost and therefore the kernel's speedup).
	BenchPairLevNs      float64 `json:"bench_pair_lev_ns_per_op"`
	BenchPairLevDPNs    float64 `json:"bench_pair_lev_dp_ns_per_op"`
	BenchPairLevSpeedup float64 `json:"bench_pair_lev_speedup"`
	BenchPairDamNs      float64 `json:"bench_pair_dam_ns_per_op"`
	BenchPairDamDPNs    float64 `json:"bench_pair_dam_dp_ns_per_op"`
	BenchPairDamSpeedup float64 `json:"bench_pair_dam_speedup"`
}

type benchLearnParallel struct {
	Links           int     `json:"links"`
	Workers         int     `json:"workers"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
}

// kernelSink keeps the kernel loops observable so they cannot be
// optimized away.
var kernelSink int

// benchKernelPhase times the dispatching edit-distance entry points
// (bit-parallel for ASCII up to 64 chars, exactly what the link engine
// calls) against the retained reference DP, over deterministic pairs of
// real corpus values.
func benchKernelPhase(specs []benchItem, smoke bool) benchKernel {
	var vals []string
	for _, s := range specs {
		for _, vs := range s.Properties {
			vals = append(vals, vs...)
		}
	}
	sort.Strings(vals) // map-order independence
	if len(vals) > 2000 {
		vals = vals[:2000]
	}
	type pair struct{ a, b string }
	pairs := make([]pair, len(vals))
	for i, v := range vals {
		pairs[i] = pair{v, vals[(i*31+7)%len(vals)]}
	}
	iters := 50
	if smoke {
		iters = 5
	}
	nsPerOp := func(fn func(a, b string) int) float64 {
		sum := 0
		t0 := time.Now()
		for it := 0; it < iters; it++ {
			for _, p := range pairs {
				sum += fn(p.a, p.b)
			}
		}
		sec := time.Since(t0).Seconds()
		kernelSink += sum
		return sec * 1e9 / float64(iters*len(pairs))
	}
	k := benchKernel{Pairs: len(pairs), Iters: iters}
	k.LevNsPerOp = nsPerOp(similarity.LevenshteinDistance)
	k.LevDPNsPerOp = nsPerOp(similarity.ReferenceLevenshteinDistance)
	k.DamNsPerOp = nsPerOp(similarity.DamerauDistance)
	k.DamDPNsPerOp = nsPerOp(similarity.ReferenceDamerauDistance)
	if k.LevNsPerOp > 0 {
		k.LevSpeedup = k.LevDPNsPerOp / k.LevNsPerOp
	}
	if k.DamNsPerOp > 0 {
		k.DamSpeedup = k.DamDPNsPerOp / k.DamNsPerOp
	}
	pairs = []pair{{"CRCW0805-63V-ohm", "CRCW0812/63V/ohm"}}
	iters *= 1000 // one pair instead of thousands: keep total ops comparable
	k.BenchPairLevNs = nsPerOp(similarity.LevenshteinDistance)
	k.BenchPairLevDPNs = nsPerOp(similarity.ReferenceLevenshteinDistance)
	k.BenchPairDamNs = nsPerOp(similarity.DamerauDistance)
	k.BenchPairDamDPNs = nsPerOp(similarity.ReferenceDamerauDistance)
	if k.BenchPairLevNs > 0 {
		k.BenchPairLevSpeedup = k.BenchPairLevDPNs / k.BenchPairLevNs
	}
	if k.BenchPairDamNs > 0 {
		k.BenchPairDamSpeedup = k.BenchPairDamDPNs / k.BenchPairDamNs
	}
	return k
}

// benchLearnParallelPhase runs the in-process learner twice over the
// generated corpus — serial, then with one worker per CPU — and reports
// both wall times. Byte-identical models are a tested invariant, so
// only the timing is recorded.
func benchLearnParallelPhase(ds *datalink.Dataset, th float64) (benchLearnParallel, error) {
	lp := benchLearnParallel{Links: ds.Training.Len(), Workers: runtime.NumCPU()}
	run := func(workers int) (float64, error) {
		cfg := datalink.LearnerConfig{SupportThreshold: th, Workers: workers}
		t0 := time.Now()
		_, err := datalink.LearnCtx(context.Background(), cfg, ds.Training, ds.External, ds.Local, ds.Ontology)
		return time.Since(t0).Seconds(), err
	}
	var err error
	if lp.SerialSeconds, err = run(1); err != nil {
		return lp, fmt.Errorf("learn-parallel serial: %w", err)
	}
	if lp.ParallelSeconds, err = run(lp.Workers); err != nil {
		return lp, fmt.Errorf("learn-parallel: %w", err)
	}
	if lp.ParallelSeconds > 0 {
		lp.Speedup = lp.SerialSeconds / lp.ParallelSeconds
	}
	return lp, nil
}

// benchIngestPhase loads the same items twice — one item per POST
// /v1/items/upsert (the pre-batch choke point), then one streaming POST
// /v1/items/bulk — each into a fresh service over its own throwaway
// store, so WAL frames, fsyncs and snapshot publishes are attributed
// cleanly to the path under test. All request bodies are rendered
// before the clocks start.
func benchIngestPhase(specs []benchItem, mode store.FsyncMode, bulkBatch int) (benchIngest, error) {
	ing := benchIngest{Items: len(specs), Fsync: mode.String(), BulkBatch: bulkBatch}

	perItemBodies := make([][]byte, len(specs))
	for i, s := range specs {
		body, err := json.Marshal(map[string]any{"side": "external", "items": []benchItem{s}})
		if err != nil {
			return ing, err
		}
		perItemBodies[i] = body
	}
	ndjson, err := ndjsonItems(specs)
	if err != nil {
		return ing, err
	}

	run := func(load func(h http.Handler) error) error {
		dir, err := os.MkdirTemp("", "linkrules-bench-ingest-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		st, rec, err := store.Open(dir, store.Options{Fsync: mode, SnapshotEvery: -1})
		if err != nil {
			return err
		}
		ol, err := datalink.OntologyFromGraph(datalink.NewGraph())
		if err != nil {
			st.Close()
			return err
		}
		seed := &service.Seed{External: datalink.NewGraph(), Local: datalink.NewGraph(), Ontology: ol}
		svc, err := service.Restore(st, rec, seed, service.Options{})
		if err != nil {
			st.Close()
			return err
		}
		defer svc.Close()
		return load(svc.Handler())
	}

	if err := run(func(h http.Handler) error {
		t0 := time.Now()
		for i, body := range perItemBodies {
			if _, err := call(h, "POST", "/v1/items/upsert", body); err != nil {
				return fmt.Errorf("ingest per-item upsert %d: %w", i, err)
			}
		}
		ing.PerItemSeconds = time.Since(t0).Seconds()
		return nil
	}); err != nil {
		return ing, err
	}
	ing.PerItemPerSec = rate(float64(len(specs)), ing.PerItemSeconds)

	if err := run(func(h http.Handler) error {
		path := fmt.Sprintf("/v1/items/bulk?side=external&batch=%d", bulkBatch)
		t0 := time.Now()
		resp, err := call(h, "POST", path, ndjson)
		if err != nil {
			return fmt.Errorf("ingest bulk: %w", err)
		}
		ing.BulkSeconds = time.Since(t0).Seconds()
		var rep service.BulkReport
		if err := json.Unmarshal(resp, &rep); err != nil {
			return fmt.Errorf("ingest bulk report: %w", err)
		}
		if rep.Errors > 0 || rep.Upserted != len(specs) {
			return fmt.Errorf("ingest bulk applied %d/%d items with %d errors", rep.Upserted, len(specs), rep.Errors)
		}
		ing.BulkBatches = rep.Batches
		return nil
	}); err != nil {
		return ing, err
	}
	ing.BulkPerSec = rate(float64(len(specs)), ing.BulkSeconds)
	if ing.BulkSeconds > 0 {
		ing.Speedup = ing.PerItemSeconds / ing.BulkSeconds
	}
	return ing, nil
}

// ndjsonItems renders specs as an NDJSON bulk body, one item per line.
func ndjsonItems(specs []benchItem) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, s := range specs {
		if err := enc.Encode(s); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// benchItem mirrors the upsert wire format.
type benchItem struct {
	ID         string              `json:"id"`
	Properties map[string][]string `json:"properties"`
}

// externalItemSpecs converts the generated external graph into upsert
// payloads: one spec per subject carrying its literal properties,
// sorted so the ingest order is deterministic.
func externalItemSpecs(g *datalink.Graph) []benchItem {
	subjects := g.AllSubjects()
	sort.Slice(subjects, func(i, j int) bool { return subjects[i].Compare(subjects[j]) < 0 })
	specs := make([]benchItem, 0, len(subjects))
	for _, s := range subjects {
		props := map[string][]string{}
		for _, tr := range g.Find(s, datalink.Term{}, datalink.Term{}) {
			if tr.O.IsLiteral() {
				props[tr.P.Value] = append(props[tr.P.Value], tr.O.Value)
			}
		}
		if len(props) == 0 {
			continue
		}
		specs = append(specs, benchItem{ID: s.Value, Properties: props})
	}
	return specs
}

// call drives one request through the in-process handler and returns
// the response body, failing on any non-200 status.
func call(h http.Handler, method, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequest(method, "http://bench.invalid"+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rw := &benchRecorder{}
	h.ServeHTTP(rw, req)
	if rw.code != http.StatusOK {
		return nil, fmt.Errorf("%s %s: %d %s", method, path, rw.code, strings.TrimSpace(rw.body.String()))
	}
	return rw.body.Bytes(), nil
}

// benchRecorder is a minimal in-memory http.ResponseWriter; the bench
// intentionally skips the network stack so latencies are handler-only.
type benchRecorder struct {
	code int
	hdr  http.Header
	body bytes.Buffer
}

func (r *benchRecorder) Header() http.Header {
	if r.hdr == nil {
		r.hdr = http.Header{}
	}
	return r.hdr
}

func (r *benchRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *benchRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(p)
}

// percentile returns the p-th percentile of sorted samples using
// nearest-rank.
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// rate divides guarding against a zero interval.
func rate(n, sec float64) float64 {
	if sec <= 0 {
		return 0
	}
	return n / sec
}
