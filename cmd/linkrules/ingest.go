package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	datalink "repro"
	"repro/internal/service"
	"repro/internal/store"
)

// cmdIngest streams a corpus file (or stdin) into a linking service
// through the batched mutation path: against a running server it POSTs
// the body to /v1/items/bulk; with -store it opens the durability
// directory directly and commits batch records in-process — no server
// needed for offline loads. Either way memory stays bounded: the input
// is chunked into batches of -bulk-batch items, each committed as one
// WAL record and one published snapshot.
//
// The input format is NDJSON (one {"id", "properties", "classes",
// "remove"} object per line) or N-Triples (statements grouped by
// consecutive subject); -format auto picks by file extension, with
// NDJSON the fallback for stdin.
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	file := fs.String("file", "", "input file; empty or - reads stdin")
	side := fs.String("side", "external", "corpus side receiving the items: external or local")
	format := fs.String("format", "auto", "body format: ndjson, ntriples, or auto (by file extension)")
	addr := fs.String("addr", "", "running service address HOST:PORT (mutually exclusive with -store)")
	storeDir := fs.String("store", "", "durability directory to ingest into in-process (mutually exclusive with -addr)")
	bulkBatch := fs.Int("bulk-batch", 0, "items per batch commit (0: server default / 1000)")
	apiKey := fs.String("api-key", "", "X-API-Key header for an authenticated service")
	fsyncMode := fs.String("fsync", "interval", "WAL fsync policy in -store mode: never, interval or always")
	timeout := fs.Duration("timeout", 0, "overall request deadline (0: none)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if (*addr == "") == (*storeDir == "") {
		return fmt.Errorf("exactly one of -addr and -store is required")
	}
	if *bulkBatch < 0 {
		return fmt.Errorf("-bulk-batch must be >= 0")
	}
	if _, err := parseIngestSide(*side); err != nil {
		return err
	}

	in := os.Stdin
	name := "stdin"
	if *file != "" && *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		in, name = f, *file
	}
	bodyFormat, err := resolveIngestFormat(*format, name)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	t0 := time.Now()
	var rep service.BulkReport
	if *addr != "" {
		rep, err = ingestHTTP(ctx, *addr, *apiKey, *side, bodyFormat, *bulkBatch, in)
	} else {
		rep, err = ingestStore(ctx, *storeDir, *fsyncMode, *side, bodyFormat, *bulkBatch, in)
	}
	reportIngest(rep, name, time.Since(t0))
	return err
}

func parseIngestSide(s string) (datalink.Side, error) {
	switch s {
	case "external":
		return datalink.ExternalSide, nil
	case "local":
		return datalink.LocalSide, nil
	}
	return 0, fmt.Errorf("side must be \"external\" or \"local\", got %q", s)
}

// resolveIngestFormat maps -format (or the input filename) to a bulk
// body format.
func resolveIngestFormat(format, name string) (string, error) {
	switch format {
	case "ndjson":
		return service.BulkNDJSON, nil
	case "ntriples":
		return service.BulkNTriples, nil
	case "auto":
		switch strings.ToLower(filepath.Ext(name)) {
		case ".nt", ".ntriples":
			return service.BulkNTriples, nil
		}
		return service.BulkNDJSON, nil
	}
	return "", fmt.Errorf("format must be ndjson, ntriples or auto, got %q", format)
}

// ingestHTTP streams the body to a running service's bulk endpoint.
func ingestHTTP(ctx context.Context, addr, apiKey, side, format string, batch int, in io.Reader) (service.BulkReport, error) {
	var rep service.BulkReport
	url := fmt.Sprintf("http://%s/v1/items/bulk?side=%s", addr, side)
	if batch > 0 {
		url += fmt.Sprintf("&batch=%d", batch)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, in)
	if err != nil {
		return rep, err
	}
	contentType := "application/x-ndjson"
	if format == service.BulkNTriples {
		contentType = "application/n-triples"
	}
	req.Header.Set("Content-Type", contentType)
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return rep, err
	}
	// The failure envelope carries the progress report too — chunks
	// committed before the failure stayed applied.
	_ = json.Unmarshal(raw, &rep)
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(raw, &e)
		return rep, fmt.Errorf("bulk ingest: %s: %s", resp.Status, e.Error)
	}
	return rep, nil
}

// ingestStore commits the stream directly into a durability directory:
// open (or create) the store, replay its state, batch-commit the input,
// checkpoint, close. The next `linkrules serve -store` boots from it.
func ingestStore(ctx context.Context, dir, fsyncMode, side, format string, batch int, in io.Reader) (service.BulkReport, error) {
	var rep service.BulkReport
	mode, err := store.ParseFsyncMode(fsyncMode)
	if err != nil {
		return rep, err
	}
	st, rec, err := store.Open(dir, store.Options{Fsync: mode, SnapshotEvery: -1})
	if err != nil {
		return rep, err
	}
	var seed *service.Seed
	if rec.Empty() {
		ol, err := datalink.OntologyFromGraph(datalink.NewGraph())
		if err != nil {
			st.Close()
			return rep, err
		}
		seed = &service.Seed{External: datalink.NewGraph(), Local: datalink.NewGraph(), Ontology: ol}
	}
	svc, err := service.Restore(st, rec, seed, service.Options{})
	if err != nil {
		st.Close()
		return rep, err
	}
	ds, err := parseIngestSide(side)
	if err != nil {
		svc.Close()
		return rep, err
	}
	rep, ingErr := svc.BulkIngest(ctx, in, ds, format, batch)
	if _, err := svc.Checkpoint(); err != nil && ingErr == nil {
		ingErr = fmt.Errorf("checkpoint after ingest: %w", err)
	}
	if err := svc.Close(); err != nil && ingErr == nil {
		ingErr = err
	}
	return rep, ingErr
}

// reportIngest prints the bulk report: a summary line on stdout, the
// per-line error report on stderr.
func reportIngest(rep service.BulkReport, name string, d time.Duration) {
	items := rep.Upserted + rep.Removed
	fmt.Printf("ingested %s: %d upserted, %d removed in %d batches (%.1fs, %.0f items/s), %d errors\n",
		name, rep.Upserted, rep.Removed, rep.Batches, d.Seconds(), rate(float64(items), d.Seconds()), rep.Errors)
	for _, e := range rep.ErrorReport {
		fmt.Fprintf(os.Stderr, "linkrules ingest: line %d: %s\n", e.Line, e.Error)
	}
	if rep.Errors > len(rep.ErrorReport) {
		fmt.Fprintf(os.Stderr, "linkrules ingest: ... and %d more errors\n", rep.Errors-len(rep.ErrorReport))
	}
}
