package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("link=90,upsert=9,learn=1")
	if err != nil {
		t.Fatal(err)
	}
	if mix["link"] != 90 || mix["upsert"] != 9 || mix["learn"] != 1 {
		t.Fatalf("mix = %v", mix)
	}
	if mix, err := parseMix("link=1"); err != nil || len(mix) != 1 {
		t.Fatalf("single-op mix: %v %v", mix, err)
	}
	for _, bad := range []string{"", "link=0", "status=5", "link=-1", "link", "link=x"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestHistQuantile(t *testing.T) {
	// 100 observations uniform over (0, 1]: cumulative buckets at each
	// 0.25 boundary. The p50 estimate interpolates to ~0.5.
	buckets := []histBucket{
		{le: 0.25, count: 25},
		{le: 0.5, count: 50},
		{le: 1, count: 100},
		{le: math.Inf(1), count: 100},
	}
	if got := histQuantile(0.50, buckets); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p50 = %v, want 0.5", got)
	}
	if got := histQuantile(0.99, buckets); math.Abs(got-0.99) > 1e-9 {
		t.Errorf("p99 = %v, want 0.99", got)
	}
	// Rank landing in the +Inf bucket clamps to the highest finite bound.
	inf := []histBucket{{le: 0.1, count: 50}, {le: math.Inf(1), count: 100}}
	if got := histQuantile(0.99, inf); got != 0.1 {
		t.Errorf("+Inf clamp = %v, want 0.1", got)
	}
	if got := histQuantile(0.5, nil); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
	if got := histQuantile(0.5, []histBucket{{le: 1, count: 0}}); got != 0 {
		t.Errorf("zero-count = %v, want 0", got)
	}
}

// TestCLILoadgenSmoke runs the loadgen subcommand in smoke mode — the
// same invocation CI uses — and checks the report: schema tag, client
// and server blocks populated, a lint-clean scrape, and a passing SLO.
func TestCLILoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	out := filepath.Join(t.TempDir(), "LOADGEN.json")
	stderr := run(t, bin, "loadgen", "-smoke", "-slo-p99", "60000", "-out", out)
	if !strings.Contains(stderr, "requests in") {
		t.Errorf("loadgen progress output:\n%s", stderr)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("loadgen wrote no report: %v", err)
	}
	var rep loadgenReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, raw)
	}
	if rep.Schema != "linkrules-loadgen/1" {
		t.Errorf("schema = %q, want linkrules-loadgen/1", rep.Schema)
	}
	if !rep.Smoke || rep.Target.Mode != "inprocess" {
		t.Errorf("run description: %+v", rep)
	}
	if rep.Build.GoVersion == "" {
		t.Errorf("build identity missing: %+v", rep.Build)
	}
	if rep.Client.Requests == 0 || rep.Client.OK == 0 || rep.Client.AchievedQPS <= 0 {
		t.Errorf("client block empty: %+v", rep.Client)
	}
	if rep.Client.PerOp["link"].OK == 0 || rep.Client.PerOp["link"].P99Ms <= 0 {
		t.Errorf("link op stats empty: %+v", rep.Client.PerOp)
	}
	if len(rep.Server.RequestsTotal) == 0 || len(rep.Server.Stages) == 0 {
		t.Errorf("server deltas empty: %+v", rep.Server)
	}
	if rep.Server.LinkP99Ms <= 0 || rep.Server.GoroutinesAfter < 1 {
		t.Errorf("server estimates implausible: %+v", rep.Server)
	}
	if !rep.Server.ScrapeLintClean {
		t.Error("post-run scrape not lint-clean")
	}
	if rep.SLO == nil || !rep.SLO.Pass {
		t.Errorf("slo block: %+v", rep.SLO)
	}
	// Schema stability: the trajectory keys must survive any refactor.
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "timestamp", "build", "target", "workload", "corpus", "client", "server", "slo"} {
		if _, ok := m[key]; !ok {
			t.Errorf("report lacks top-level key %q", key)
		}
	}
}

// TestCLIVersion: `linkrules version` prints the build identity.
func TestCLIVersion(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	out := run(t, bin, "version")
	if !strings.Contains(out, "linkrules ") || !strings.Contains(out, "go1.") {
		t.Errorf("version output: %q", out)
	}
}
