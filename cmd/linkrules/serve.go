package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	datalink "repro"
	"repro/internal/service"
)

// cmdServe starts the live linking service: an HTTP/JSON API over a
// corpus that supports item upserts/removals, relearning rules from
// labeled links, and top-k link queries inside the rule-reduced space.
//
// The corpus comes either from a directory written by `linkrules
// datagen` (-data) or is generated in-process from the corpus flags.
// With -learn (the default) the corpus's training links are learned at
// startup, so the service answers link queries immediately; without it
// the service starts empty-handed and expects POST /v1/learn.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	data := fs.String("data", "", "corpus directory from `linkrules datagen` (empty: generate from corpus flags)")
	learn := fs.Bool("learn", true, "learn rules from the corpus training links at startup")
	if err := parse(fs, args); err != nil {
		return err
	}

	var ds *datalink.Dataset
	if *data != "" {
		var err error
		if ds, err = readDataset(*data); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "linkrules serve: loaded corpus from %s (SE %d, SL %d triples)\n",
			*data, ds.External.Len(), ds.Local.Len())
	} else {
		cfg, err := cf.config()
		if err != nil {
			return err
		}
		if ds, err = datalink.GenerateCorpus(cfg); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "linkrules serve: generated %s corpus, seed %d (SE %d, SL %d triples)\n",
			cf.scale, cf.seed, ds.External.Len(), ds.Local.Len())
	}

	svc := service.New(ds.External, ds.Local, ds.Ontology, service.Options{
		Learner:       datalink.LearnerConfig{SupportThreshold: cf.th},
		DefaultLinker: datalink.DefaultLinkingConfig(),
	})
	if *learn {
		if err := svc.LearnLinks(ds.Training.Links); err != nil {
			return fmt.Errorf("learning startup model: %w", err)
		}
		fmt.Fprintf(os.Stderr, "linkrules serve: learned rules from %d training links\n", ds.Training.Len())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout so scripts (and the CLI smoke
	// test) can pick up an ephemeral port.
	fmt.Printf("listening on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
	return srv.Serve(ln)
}

// readDataset loads the four N-Triples files `linkrules datagen` writes.
func readDataset(dir string) (*datalink.Dataset, error) {
	ontoG, err := readGraph(filepath.Join(dir, "ontology.nt"))
	if err != nil {
		return nil, err
	}
	ol, err := datalink.OntologyFromGraph(ontoG)
	if err != nil {
		return nil, err
	}
	sl, err := readGraph(filepath.Join(dir, "local.nt"))
	if err != nil {
		return nil, err
	}
	se, err := readGraph(filepath.Join(dir, "external.nt"))
	if err != nil {
		return nil, err
	}
	tsG, err := readGraph(filepath.Join(dir, "training.nt"))
	if err != nil {
		return nil, err
	}
	return &datalink.Dataset{
		External: se,
		Local:    sl,
		Ontology: ol,
		Training: datalink.TrainingSetFromGraph(tsG),
	}, nil
}
