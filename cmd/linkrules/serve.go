package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	datalink "repro"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

// cmdServe starts the live linking service: an HTTP/JSON API over a
// corpus that supports item upserts/removals, relearning rules from
// labeled links, and top-k link queries inside the rule-reduced space.
//
// The corpus comes either from a directory written by `linkrules
// datagen` (-data) or is generated in-process from the corpus flags.
// With -learn (the default) the corpus's training links are learned at
// startup, so the service answers link queries immediately; without it
// the service starts empty-handed and expects POST /v1/learn.
//
// With -store DIR the service is durable: every mutation is written to a
// WAL before it is applied, state is checkpointed into binary snapshots
// (forced via POST /v1/admin/snapshot, automatic every -snapshot-every
// mutations), and a restart recovers snapshot + WAL tail — a store
// directory with existing state takes precedence over the corpus flags.
// -fsync picks the WAL durability policy (never, interval, always).
//
// Overload protection is configured with -max-inflight (admission cap,
// excess gets 429), -request-timeout (per-request deadline, 503),
// -rate/-burst (per-client token buckets) and -api-keys (a file of
// accepted keys; -strict-auth turns unauthenticated requests into
// 401s). See the service package's resilience middleware.
//
// The flight recorder keeps the tail of the request stream: every slow
// (-slow-ms) or errored request is retained with its stage-level trace,
// plus a -trace-sample fraction of normal traffic, queryable via
// -debug-requests (GET /debug/requests). See examples/service/README.md.
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight requests get
// a drain deadline and the WAL is flushed and synced before exit.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	data := fs.String("data", "", "corpus directory from `linkrules datagen` (empty: generate from corpus flags)")
	learn := fs.Bool("learn", true, "learn rules from the corpus training links at startup")
	learnWorkers := fs.Int("learn-workers", 0, "goroutines for the learning passes (0: GOMAXPROCS); model is identical at any setting")
	storeDir := fs.String("store", "", "durability directory (empty: ephemeral; existing state wins over corpus flags)")
	fsyncMode := fs.String("fsync", "interval", "WAL fsync policy: never, interval or always")
	snapEvery := fs.Int("snapshot-every", 1024, "mutations between automatic snapshots (<0 disables)")
	bulkBatch := fs.Int("bulk-batch", 0, "default items per bulk-ingest batch commit (0: 1000; requests may override with ?batch=N)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently served requests; excess gets 429 (0: unlimited)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request deadline; 503 when exceeded (0: none)")
	rate := fs.Float64("rate", 0, "per-client sustained requests/second (0: unlimited)")
	burst := fs.Int("burst", 0, "per-client burst capacity (0: max(1, round(rate)))")
	apiKeysFile := fs.String("api-keys", "", "file of accepted API keys, one per line (empty: no authentication)")
	strictAuth := fs.Bool("strict-auth", false, "reject unauthenticated requests with 401 (requires -api-keys)")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/ (gated by the auth middleware like any endpoint)")
	accessLog := fs.Bool("access-log", false, "emit one structured JSON log line per request to stderr")
	slowMS := fs.Float64("slow-ms", 0, "flight recorder slow threshold in ms; slow/error requests keep their stage traces (0: default 250)")
	traceSample := fs.Float64("trace-sample", 0, "fraction of fast requests the flight recorder also samples (0..1)")
	debugRequests := fs.Bool("debug-requests", false, "mount GET /debug/requests (the flight recorder query endpoint, gated like pprof)")
	if err := parse(fs, args); err != nil {
		return err
	}

	keys, err := loadAPIKeys(*apiKeysFile)
	if err != nil {
		return err
	}
	if *strictAuth && len(keys) == 0 {
		return fmt.Errorf("-strict-auth requires -api-keys with at least one key")
	}
	// One registry per process: the service's HTTP/pipeline instruments
	// and the store's WAL/checkpoint instruments share the /metrics
	// endpoint.
	reg := obs.NewRegistry()
	opts := service.Options{
		Learner:       datalink.LearnerConfig{SupportThreshold: cf.th, Workers: *learnWorkers},
		DefaultLinker: datalink.DefaultLinkingConfig(),
		Resilience: service.ResilienceOptions{
			MaxInFlight:    *maxInflight,
			RequestTimeout: *reqTimeout,
			Rate:           *rate,
			Burst:          *burst,
			APIKeys:        keys,
			StrictAuth:     *strictAuth,
		},
		BulkBatch:   *bulkBatch,
		Metrics:     reg,
		EnablePprof: *pprofOn,
		Recorder: obs.RecorderOptions{
			SlowThreshold: time.Duration(*slowMS * float64(time.Millisecond)),
			SampleRate:    *traceSample,
		},
		DebugRequests: *debugRequests,
	}
	if *slowMS < 0 || *traceSample < 0 || *traceSample > 1 {
		return fmt.Errorf("-slow-ms must be >= 0 and -trace-sample in [0,1]")
	}
	if *accessLog {
		opts.AccessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	var svc *service.Service
	if *storeDir != "" {
		mode, err := store.ParseFsyncMode(*fsyncMode)
		if err != nil {
			return err
		}
		st, rec, err := store.Open(*storeDir, store.Options{
			Fsync:         mode,
			SnapshotEvery: *snapEvery,
			Metrics:       store.NewMetrics(reg),
		})
		if err != nil {
			return err
		}
		var seed *service.Seed
		if rec.Empty() {
			ds, err := loadOrGenerateCorpus(cf, *data)
			if err != nil {
				st.Close()
				return err
			}
			seed = &service.Seed{External: ds.External, Local: ds.Local, Ontology: ds.Ontology}
			if *learn {
				seed.Training = ds.Training.Links
			}
		} else {
			tail := len(rec.Tail)
			snapSeq := uint64(0)
			if rec.Snapshot != nil {
				snapSeq = rec.Snapshot.Seq
			}
			fmt.Fprintf(os.Stderr, "linkrules serve: recovering from %s (snapshot seq %d, %d wal records", *storeDir, snapSeq, tail)
			if rec.TornTail {
				fmt.Fprint(os.Stderr, ", torn tail ignored")
			}
			fmt.Fprintln(os.Stderr, ")")
			// An existing store's state wins over the corpus flags — that
			// includes the learner config the persisted model was built
			// with. A -th given on restart would silently relearn a
			// different model than the one whose answers were acknowledged.
			if cf.th != 0 {
				fmt.Fprintf(os.Stderr, "linkrules serve: ignoring -th %g: the store's persisted learner config wins on recovery\n", cf.th)
			}
			// Workers survives: it only affects learning wall time, never
			// the model, so it cannot conflict with the persisted config.
			opts.Learner = datalink.LearnerConfig{Workers: *learnWorkers}
		}
		if svc, err = service.Restore(st, rec, seed, opts); err != nil {
			st.Close()
			return err
		}
		stats := st.Stats()
		fmt.Fprintf(os.Stderr, "linkrules serve: durable store at %s (fsync %s, seq %d, last snapshot %d)\n",
			*storeDir, mode, stats.Seq, stats.LastSnapshotSeq)
	} else {
		ds, err := loadOrGenerateCorpus(cf, *data)
		if err != nil {
			return err
		}
		svc = service.New(ds.External, ds.Local, ds.Ontology, opts)
		if *learn {
			if err := svc.LearnLinks(ds.Training.Links); err != nil {
				return fmt.Errorf("learning startup model: %w", err)
			}
			fmt.Fprintf(os.Stderr, "linkrules serve: learned rules from %d training links\n", ds.Training.Len())
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		svc.Close()
		return err
	}
	// The resolved address goes to stdout so scripts (and the CLI smoke
	// test) can pick up an ephemeral port.
	fmt.Printf("listening on http://%s\n", ln.Addr())
	// Server-level timeouts bound slow clients (slowloris reads, stalled
	// response writes, idle keep-alives) independently of the service's
	// per-request deadline. WriteTimeout must outlast -request-timeout,
	// or the connection would be cut before the handler can answer 503 —
	// and long streaming responses get headroom beyond the deadline too.
	writeTimeout := 2 * time.Minute
	if *reqTimeout > 0 && *reqTimeout+30*time.Second > writeTimeout {
		writeTimeout = *reqTimeout + 30*time.Second
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       1 * time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	// Serve until the listener fails or a signal asks for shutdown; then
	// drain in-flight requests and sync the WAL before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
		stop() // a second signal kills the process the hard way
		fmt.Fprintf(os.Stderr, "linkrules serve: signal received, draining (deadline %s)\n", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "linkrules serve: drain incomplete: %v\n", err)
			srv.Close()
		}
		if err := svc.Close(); err != nil {
			return fmt.Errorf("closing store: %w", err)
		}
		fmt.Fprintln(os.Stderr, "linkrules serve: shut down cleanly")
		return nil
	}
}

// loadAPIKeys reads the -api-keys file: one key per line, blank lines
// and #-comments skipped. An empty path means no authentication.
func loadAPIKeys(path string) ([]string, error) {
	if path == "" {
		return nil, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading api keys: %w", err)
	}
	var keys []string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		keys = append(keys, line)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("api keys file %s holds no keys", path)
	}
	return keys, nil
}

// loadOrGenerateCorpus resolves the corpus the flags describe: read from
// a datagen directory, or generate in-process.
func loadOrGenerateCorpus(cf *corpusFlags, data string) (*datalink.Dataset, error) {
	if data != "" {
		ds, err := readDataset(data)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "linkrules serve: loaded corpus from %s (SE %d, SL %d triples)\n",
			data, ds.External.Len(), ds.Local.Len())
		return ds, nil
	}
	cfg, err := cf.config()
	if err != nil {
		return nil, err
	}
	ds, err := datalink.GenerateCorpus(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "linkrules serve: generated %s corpus, seed %d (SE %d, SL %d triples)\n",
		cf.scale, cf.seed, ds.External.Len(), ds.Local.Len())
	return ds, nil
}

// readDataset loads the four N-Triples files `linkrules datagen` writes.
func readDataset(dir string) (*datalink.Dataset, error) {
	ontoG, err := readGraph(filepath.Join(dir, "ontology.nt"))
	if err != nil {
		return nil, err
	}
	ol, err := datalink.OntologyFromGraph(ontoG)
	if err != nil {
		return nil, err
	}
	sl, err := readGraph(filepath.Join(dir, "local.nt"))
	if err != nil {
		return nil, err
	}
	se, err := readGraph(filepath.Join(dir, "external.nt"))
	if err != nil {
		return nil, err
	}
	tsG, err := readGraph(filepath.Join(dir, "training.nt"))
	if err != nil {
		return nil, err
	}
	return &datalink.Dataset{
		External: se,
		Local:    sl,
		Ontology: ol,
		Training: datalink.TrainingSetFromGraph(tsG),
	}, nil
}
