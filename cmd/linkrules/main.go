// Command linkrules drives the full reproduction of "Classification rule
// learning for data linking" (Pernelle & Saïs, LWDM @ EDBT 2012):
// synthetic corpus generation, rule learning, classification, and every
// experiment of the paper's Section 5 plus the extension experiments
// indexed in DESIGN.md.
//
// Usage:
//
//	linkrules <command> [flags]
//
// Commands:
//
//	table1      reproduce Table 1 and the Section 5 statistics (E1+E2)
//	stats       print only the Section 5 corpus statistics (E2)
//	reduction   per-band linking-space reduction (E3)
//	blocking    rule-based space vs blocking baselines (E4)
//	sweep       support-threshold sweep (E5a)
//	splitters   separator vs n-gram splitting ablation (E5b)
//	ordering    rule-ordering ablation (E5c)
//	generalize  subsumption generalization experiment (E6)
//	toponyms    secondary-domain demo (geographic labels)
//	datagen     write a generated corpus to N-Triples files
//	learn       learn rules from corpus files and save them
//	classify    classify external items with saved rules, or run the
//	            batch linking workflow (train → classify → CSV)
//	ingest      stream a corpus file into a service via the bulk path
//	serve       run the live linking service (HTTP/JSON)
//	bench       run the service benchmark, emit a JSON report
//	loadgen     drive a service with a mixed workload, check the SLO
//	version     print build identity (version, go version, revision)
//	all         run every experiment in sequence
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	datalink "repro"
	"repro/internal/obs"
)

// printVersion reports the build identity — the same triple every
// /metrics scrape exposes as the linkrules_build_info gauge.
func printVersion() {
	bi := obs.Build()
	fmt.Printf("linkrules %s (%s, %s)\n", bi.Version, bi.Revision, bi.GoVersion)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "table1":
		err = cmdTable1(args)
	case "stats":
		err = cmdStats(args)
	case "reduction":
		err = cmdReduction(args)
	case "blocking":
		err = cmdBlocking(args)
	case "sweep":
		err = cmdSweep(args)
	case "splitters":
		err = cmdSplitters(args)
	case "ordering":
		err = cmdOrdering(args)
	case "generalize":
		err = cmdGeneralize(args)
	case "holdout":
		err = cmdHoldout(args)
	case "link":
		err = cmdLink(args)
	case "rules":
		err = cmdRules(args)
	case "keys":
		err = cmdKeys(args)
	case "toponyms":
		err = cmdToponyms(args)
	case "datagen":
		err = cmdDatagen(args)
	case "learn":
		err = cmdLearn(args)
	case "classify":
		err = cmdClassify(args)
	case "ingest":
		err = cmdIngest(args)
	case "all":
		err = cmdAll(args)
	case "export":
		err = cmdExport(args)
	case "serve":
		err = cmdServe(args)
	case "bench":
		err = cmdBench(args)
	case "loadgen":
		err = cmdLoadgen(args)
	case "version", "-version", "--version":
		printVersion()
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "linkrules: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkrules %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `linkrules — reproduction of "Classification rule learning for data linking" (EDBT/LWDM 2012)

usage: linkrules <command> [flags]

experiments (see DESIGN.md for the experiment index):
  table1      Table 1 + Section 5 statistics        (E1, E2)
  stats       Section 5 corpus statistics only      (E2)
  reduction   linking-space reduction per band      (E3)
  blocking    comparison against blocking baselines (E4)
  sweep       support-threshold sweep               (E5a)
  splitters   splitter ablation                     (E5b)
  ordering    rule-ordering ablation                (E5c)
  generalize  subsumption generalization            (E6)
  holdout     k-fold held-out evaluation            (E7)
  link        in-space linking, serial vs parallel  (E8)
  rules       inspect top rules with expert evidence
  keys        discover (almost-)key constraints in the catalog
  toponyms    secondary-domain demo
  all         everything above in sequence
  export      write every experiment table to a directory (.txt + .csv)

pipeline:
  datagen -out DIR     write a corpus as N-Triples files (-stream keeps
                       memory bounded for million-item corpora)
  learn   -data DIR    learn rules from corpus files, save rules.tsv
  classify -rules F    classify external items with saved rules
  classify -data DIR -csv FILE
                       batch linking workflow: train on the corpus's
                       expert links, classify + score every external
                       item, apply the post-classification filters
                       (-threshold, -best, -distinct) and emit an
                       external_id,local_id,confidence CSV
  ingest -file F       stream NDJSON or N-Triples items into a service
                       through the batched bulk path, against a running
                       server (-addr) or straight into a durability
                       directory (-store); -side, -bulk-batch

service:
  serve -addr HOST:PORT   run the live linking service (HTTP/JSON):
                          upsert/remove items, relearn rules, query
                          top-k links in the rule-reduced space
                          (see examples/service for a walkthrough)
        -store DIR        durable mode: WAL + snapshot persistence with
                          crash recovery (-fsync never|interval|always,
                          -snapshot-every N); an existing store's state
                          wins over the corpus flags

  bench -out FILE         run the benchmark corpus end-to-end through the
                          service stack (upsert throughput, learn time,
                          link p50/p99, WAL append rate) and emit a
                          machine-readable JSON report (-smoke for CI)

  loadgen -qps N          drive a service (in-process, or -addr HOST:PORT
                          for a running one) with a mixed open-loop
                          workload (-mix link=90,upsert=9,learn=1) for
                          -duration, diff its /metrics scrapes, and emit
                          a JSON report; -slo-p99 MS makes a missed link
                          p99 exit non-zero (-smoke for CI)

  version                 print build identity (also -version)

common flags: -seed N, -scale paper|small, -links N, -catalog N`)
}

// corpusFlags holds the shared corpus-shaping flags.
type corpusFlags struct {
	seed    int64
	scale   string
	links   int
	catalog int
	th      float64
}

func addCorpusFlags(fs *flag.FlagSet) *corpusFlags {
	cf := &corpusFlags{}
	fs.Int64Var(&cf.seed, "seed", 42, "corpus generation seed")
	fs.StringVar(&cf.scale, "scale", "paper", "corpus scale: paper or small")
	fs.IntVar(&cf.links, "links", 0, "override training-set size |TS|")
	fs.IntVar(&cf.catalog, "catalog", 0, "override catalog size |SL|")
	fs.Float64Var(&cf.th, "th", 0, "support threshold (0 = paper default 0.002)")
	return cf
}

func (cf *corpusFlags) config() (datalink.CorpusConfig, error) {
	var cfg datalink.CorpusConfig
	switch cf.scale {
	case "paper":
		cfg = datalink.PaperCorpusConfig(cf.seed)
	case "small":
		cfg = datalink.SmallCorpusConfig(cf.seed)
	default:
		return cfg, fmt.Errorf("unknown scale %q", cf.scale)
	}
	if cf.links > 0 {
		cfg.TrainingLinks = cf.links
	}
	if cf.catalog > 0 {
		cfg.CatalogSize = cf.catalog
	}
	if cfg.CatalogSize < cfg.TrainingLinks {
		cfg.CatalogSize = cfg.TrainingLinks * 2
	}
	return cfg, nil
}

func (cf *corpusFlags) buildCorpus() (*datalink.Corpus, error) {
	cfg, err := cf.config()
	if err != nil {
		return nil, err
	}
	ds, err := datalink.GenerateCorpus(cfg)
	if err != nil {
		return nil, err
	}
	return datalink.BuildCorpus(ds, datalink.LearnerConfig{SupportThreshold: cf.th})
}

func parse(fs *flag.FlagSet, args []string) error {
	fs.SetOutput(os.Stderr)
	return fs.Parse(args)
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	c, err := cf.buildCorpus()
	if err != nil {
		return err
	}
	if err := datalink.SectionStatsTable(datalink.SectionStats(c)).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return datalink.Table1Table(datalink.Table1(c, datalink.PaperBands())).Render(os.Stdout)
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	c, err := cf.buildCorpus()
	if err != nil {
		return err
	}
	return datalink.SectionStatsTable(datalink.SectionStats(c)).Render(os.Stdout)
}

func cmdReduction(args []string) error {
	fs := flag.NewFlagSet("reduction", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	c, err := cf.buildCorpus()
	if err != nil {
		return err
	}
	return datalink.SpaceReductionTable(datalink.SpaceReduction(c, datalink.PaperBands())).Render(os.Stdout)
}

func cmdBlocking(args []string) error {
	fs := flag.NewFlagSet("blocking", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	// The baselines materialize candidate sets; default to a reduced
	// scale unless the user explicitly sized the corpus.
	if cf.scale == "paper" && cf.links == 0 && cf.catalog == 0 {
		cf.links, cf.catalog = 2000, 8000
		fmt.Fprintln(os.Stderr, "linkrules blocking: using -links 2000 -catalog 8000 (override with flags)")
	}
	c, err := cf.buildCorpus()
	if err != nil {
		return err
	}
	rows := datalink.CompareBlocking(c, datalink.DefaultBlockingMethods(c))
	return datalink.BlockingTable(rows).Render(os.Stdout)
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	cfg, err := cf.config()
	if err != nil {
		return err
	}
	ds, err := datalink.GenerateCorpus(cfg)
	if err != nil {
		return err
	}
	ths := []float64{0.0005, 0.001, 0.002, 0.005, 0.01}
	rows, err := datalink.ThresholdSweep(ds, datalink.LearnerConfig{}, ths)
	if err != nil {
		return err
	}
	return datalink.SweepTable(rows).Render(os.Stdout)
}

func cmdSplitters(args []string) error {
	fs := flag.NewFlagSet("splitters", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	cfg, err := cf.config()
	if err != nil {
		return err
	}
	ds, err := datalink.GenerateCorpus(cfg)
	if err != nil {
		return err
	}
	sps := []datalink.Splitter{
		datalink.NewSeparatorSplitter(datalink.SplitterOptions{}),
		datalink.NewSeparatorSplitter(datalink.SplitterOptions{Lowercase: true}),
		datalink.NewNGramSplitter(3, false, datalink.SplitterOptions{}),
		datalink.NewNGramSplitter(4, true, datalink.SplitterOptions{}),
	}
	rows, err := datalink.SplitterAblation(ds, datalink.LearnerConfig{}, sps)
	if err != nil {
		return err
	}
	return datalink.SplitterAblationTable(rows).Render(os.Stdout)
}

func cmdOrdering(args []string) error {
	fs := flag.NewFlagSet("ordering", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	c, err := cf.buildCorpus()
	if err != nil {
		return err
	}
	return datalink.OrderingAblationTable(datalink.OrderingAblation(c)).Render(os.Stdout)
}

func cmdGeneralize(args []string) error {
	fs := flag.NewFlagSet("generalize", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	c, err := cf.buildCorpus()
	if err != nil {
		return err
	}
	return datalink.GeneralizationTable(datalink.GeneralizationExperiment(c)).Render(os.Stdout)
}

func cmdHoldout(args []string) error {
	fs := flag.NewFlagSet("holdout", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	folds := fs.Int("k", 5, "number of folds")
	if err := parse(fs, args); err != nil {
		return err
	}
	cfg, err := cf.config()
	if err != nil {
		return err
	}
	ds, err := datalink.GenerateCorpus(cfg)
	if err != nil {
		return err
	}
	s, err := datalink.CrossValidate(ds, datalink.LearnerConfig{SupportThreshold: cf.th}, *folds, cf.seed)
	if err != nil {
		return err
	}
	return datalink.HoldoutTable(s).Render(os.Stdout)
}

func cmdLink(args []string) error {
	fs := flag.NewFlagSet("link", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	workers := fs.Int("workers", 0, "run a single worker count instead of the 1,2,4,... ladder")
	linkTh := fs.Float64("link-threshold", 0, "override the match threshold (0 = default)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("negative worker count %d", *workers)
	}
	c, err := cf.buildCorpus()
	if err != nil {
		return err
	}
	cfg := datalink.DefaultLinkingConfig()
	if *linkTh > 0 {
		cfg.Threshold = *linkTh
	}
	counts := datalink.LinkingWorkerCounts()
	if *workers > 0 {
		counts = []int{*workers}
	}
	rows, err := datalink.LinkingExperiment(c, cfg, counts)
	if err != nil {
		return err
	}
	return datalink.LinkingExperimentTable(rows).Render(os.Stdout)
}

func cmdRules(args []string) error {
	fs := flag.NewFlagSet("rules", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	top := fs.Int("top", 15, "rules to print")
	examples := fs.Int("examples", 2, "evidence links to print per rule")
	if err := parse(fs, args); err != nil {
		return err
	}
	c, err := cf.buildCorpus()
	if err != nil {
		return err
	}
	for i, r := range c.Model.Rules.Rules {
		if i >= *top {
			break
		}
		fmt.Printf("%s\n", r)
		ev := c.Model.Evidence(r, *examples)
		for _, link := range ev.Supporting {
			fmt.Printf("    + %s  (pn %q)\n", link.External.Value,
				pnOf(c.Dataset.External, link.External))
		}
		for _, ce := range ev.Counter {
			fmt.Printf("    - %s  (pn %q, actually %s)\n", ce.Link.External.Value,
				pnOf(c.Dataset.External, ce.Link.External), classNames(ce.Classes))
		}
	}
	return nil
}

func pnOf(g *datalink.Graph, item datalink.Term) string {
	if v, ok := g.FirstObject(item, datalink.PartNumberProperty); ok && v.IsLiteral() {
		return v.Value
	}
	return ""
}

func classNames(classes []datalink.Term) string {
	names := make([]string, len(classes))
	for i, c := range classes {
		s := c.Value
		for j := len(s) - 1; j >= 0; j-- {
			if s[j] == '#' || s[j] == '/' {
				s = s[j+1:]
				break
			}
		}
		names[i] = s
	}
	return strings.Join(names, ",")
}

func cmdKeys(args []string) error {
	fs := flag.NewFlagSet("keys", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	top := fs.Int("top", 20, "keys to print")
	distinct := fs.Float64("distinctness", 0.95, "minimum distinctness")
	if err := parse(fs, args); err != nil {
		return err
	}
	cfg, err := cf.config()
	if err != nil {
		return err
	}
	ds, err := datalink.GenerateCorpus(cfg)
	if err != nil {
		return err
	}
	found := datalink.DiscoverKeys(ds.Local, ds.Ontology.Leaves(), datalink.KeyConfig{
		MinDistinctness: *distinct,
	})
	fmt.Printf("%d (almost-)keys discovered over %d leaf classes (distinctness >= %.2f):\n",
		len(found), len(ds.Ontology.Leaves()), *distinct)
	for i, k := range found {
		if i >= *top {
			break
		}
		fmt.Printf("  %s\n", k)
	}
	return nil
}

func cmdToponyms(args []string) error {
	fs := flag.NewFlagSet("toponyms", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "generation seed")
	links := fs.Int("links", 2000, "training links")
	if err := parse(fs, args); err != nil {
		return err
	}
	ds, err := datalink.GenerateToponyms(datalink.ToponymConfig{Seed: *seed, Links: *links})
	if err != nil {
		return err
	}
	c, err := datalink.BuildCorpus(ds, datalink.LearnerConfig{
		Properties:       []datalink.Term{datalink.RDFSLabel},
		SupportThreshold: 0.002,
	})
	if err != nil {
		return err
	}
	fmt.Printf("toponym corpus: |TS|=%d, %d rules learned\n\n", ds.Training.Len(), c.Model.Rules.Len())
	return datalink.Table1Table(datalink.Table1(c, datalink.PaperBands())).Render(os.Stdout)
}

func cmdDatagen(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	out := fs.String("out", "corpus", "output directory")
	stream := fs.Bool("stream", false, "stream entities to disk as they are generated (bounded memory; triples land in generation order, not sorted)")
	if err := parse(fs, args); err != nil {
		return err
	}
	cfg, err := cf.config()
	if err != nil {
		return err
	}
	if *stream {
		return streamDatagen(cfg, *out)
	}
	ds, err := datalink.GenerateCorpus(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	files := map[string]*datalink.Graph{
		"ontology.nt": ds.Ontology.ToGraph(),
		"local.nt":    ds.Local,
		"external.nt": ds.External,
		"training.nt": ds.Training.ToGraph(),
	}
	for name, g := range files {
		if err := writeGraph(filepath.Join(*out, name), g); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d triples)\n", filepath.Join(*out, name), g.Len())
	}
	return nil
}

// ntSink writes corpus entities straight to their N-Triples files as
// they are generated — `datagen -stream`'s bounded-memory path. The
// corpus is identical to the materialized one; only the line order
// differs (generation order instead of sorted), which any N-Triples
// reader is indifferent to.
type ntSink struct {
	local, external, training *bufio.Writer
	locals, externals         int
}

func (s *ntSink) Local(id, class datalink.Term, pn string) error {
	s.locals++
	_, err := fmt.Fprintf(s.local, "%s\n%s\n",
		datalink.T(id, datalink.RDFType, class),
		datalink.T(id, datalink.PartNumberProperty, datalink.NewLiteral(pn)))
	return err
}

func (s *ntSink) External(id datalink.Term, pn, manufacturer string, local, _ datalink.Term) error {
	s.externals++
	if _, err := fmt.Fprintf(s.external, "%s\n%s\n",
		datalink.T(id, datalink.PartNumberProperty, datalink.NewLiteral(pn)),
		datalink.T(id, datalink.ManufacturerProperty, datalink.NewLiteral(manufacturer))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(s.training, "%s\n", datalink.T(id, datalink.OWLSameAs, local))
	return err
}

// streamDatagen is `datagen -stream`: generate the corpus directly into
// the output files without materializing it.
func streamDatagen(cfg datalink.CorpusConfig, out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	sink := &ntSink{}
	names := []string{"local.nt", "external.nt", "training.nt"}
	dests := []**bufio.Writer{&sink.local, &sink.external, &sink.training}
	files := make([]*os.File, 0, len(names))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for i, name := range names {
		f, err := os.Create(filepath.Join(out, name))
		if err != nil {
			return err
		}
		files = append(files, f)
		*dests[i] = bufio.NewWriter(f)
	}
	ont, err := datalink.StreamCorpus(cfg, sink)
	if err != nil {
		return err
	}
	for i, bw := range []*bufio.Writer{sink.local, sink.external, sink.training} {
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := files[i].Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (streamed)\n", filepath.Join(out, names[i]))
	}
	og := ont.ToGraph()
	if err := writeGraph(filepath.Join(out, "ontology.nt"), og); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d triples)\n", filepath.Join(out, "ontology.nt"), og.Len())
	fmt.Printf("streamed %d local and %d external items\n", sink.locals, sink.externals)
	return nil
}

func writeGraph(path string, g *datalink.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := datalink.WriteNTriples(f, g); err != nil {
		return err
	}
	return f.Close()
}

func readGraph(path string) (*datalink.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return datalink.ReadNTriples(f)
}

func cmdLearn(args []string) error {
	fs := flag.NewFlagSet("learn", flag.ContinueOnError)
	dir := fs.String("data", "corpus", "corpus directory (from `linkrules datagen`)")
	rulesOut := fs.String("rules", "rules.tsv", "output rules file")
	th := fs.Float64("th", 0, "support threshold (0 = paper default 0.002)")
	property := fs.String("property", "", "restrict learning to one property IRI (default: all literal properties, as in Algorithm 1)")
	if err := parse(fs, args); err != nil {
		return err
	}
	ds, err := readDataset(*dir)
	if err != nil {
		return err
	}
	cfg := datalink.LearnerConfig{SupportThreshold: *th}
	if *property != "" {
		cfg.Properties = []datalink.Term{datalink.NewIRI(*property)}
	}
	m, err := datalink.Learn(cfg, ds.Training, ds.External, ds.Local, ds.Ontology)
	if err != nil {
		return err
	}
	f, err := os.Create(*rulesOut)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Rules.Write(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("learned %d rules from %d links; wrote %s\n", m.Rules.Len(), m.Stats.TSSize, *rulesOut)
	fmt.Printf("stats: %d distinct segments, %d occurrences, %d frequent classes\n",
		m.Stats.DistinctSegments, m.Stats.SegmentOccurrences, m.Stats.FrequentClasses)
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	rulesIn := fs.String("rules", "rules.tsv", "rules file (from `linkrules learn`)")
	extPath := fs.String("external", "corpus/external.nt", "external items file")
	topK := fs.Int("top", 3, "predictions to print — or candidate links to score — per item")
	limit := fs.Int("limit", 20, "items to print (0 = all; print mode only)")
	dataDir := fs.String("data", "", "linking mode: corpus directory (from `linkrules datagen`) to train on and link")
	csvOut := fs.String("csv", "", "linking mode: write an external_id,local_id,confidence CSV to FILE (- = stdout)")
	threshold := fs.Float64("threshold", 0.5, "linking mode: minimum match confidence")
	th := fs.Float64("th", 0, "linking mode: rule support threshold (0 = paper default 0.002)")
	best := fs.Bool("best", false, "linking mode filter: keep only the best link per external item")
	distinct := fs.Bool("distinct", false, "linking mode filter: one-to-one links, kept greedily by confidence")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *csvOut != "" {
		return classifyLinks(*dataDir, *csvOut, *threshold, *th, *topK, *best, *distinct)
	}
	rf, err := os.Open(*rulesIn)
	if err != nil {
		return err
	}
	defer rf.Close()
	rs, err := datalink.ReadRules(rf)
	if err != nil {
		return err
	}
	se, err := readGraph(*extPath)
	if err != nil {
		return err
	}
	cl := datalink.NewClassifier(rs, nil)
	items := se.AllSubjects()
	sort.Slice(items, func(i, j int) bool { return items[i].Compare(items[j]) < 0 })
	printed := 0
	for _, item := range items {
		if *limit > 0 && printed >= *limit {
			break
		}
		preds := cl.Classify(item, se)
		if len(preds) == 0 {
			continue
		}
		printed++
		fmt.Printf("%s\n", item.Value)
		for k, p := range preds {
			if k >= *topK {
				break
			}
			fmt.Printf("  -> %s (conf=%.3f lift=%.1f via %q)\n",
				p.Class.Value, p.Rule.Confidence(), p.Rule.Lift(), p.Rule.Segment)
		}
	}
	if printed == 0 {
		fmt.Println("no external item matched any rule")
	}
	return nil
}

// classifyLinks is `classify -csv`: the batch linking workflow in one
// command. Train on the corpus's expert links, classify every external
// item to reduce its candidate space, score the candidates, then apply
// the post-classification filter rules (-threshold, -best, -distinct)
// and emit one external_id,local_id,confidence row per surviving link.
func classifyLinks(dir, out string, threshold, support float64, topK int, best, distinct bool) error {
	if dir == "" {
		return fmt.Errorf("-csv needs -data DIR (a corpus from `linkrules datagen`)")
	}
	if threshold < 0 || threshold > 1 {
		return fmt.Errorf("-threshold must be in [0,1], got %g", threshold)
	}
	ds, err := readDataset(dir)
	if err != nil {
		return err
	}
	p, err := datalink.NewPipeline(datalink.LearnerConfig{SupportThreshold: support},
		ds.Training, ds.External, ds.Local, ds.Ontology)
	if err != nil {
		return err
	}
	cfg := datalink.DefaultLinkingConfig()
	cfg.Threshold = threshold
	items := ds.External.AllSubjects()
	sort.Slice(items, func(i, j int) bool { return items[i].Compare(items[j]) < 0 })
	if topK < 1 {
		topK = 1
	}
	byItem, err := p.LinkTopK(context.Background(), items, cfg, topK)
	if err != nil {
		return err
	}
	var links []datalink.Match
	for _, item := range items {
		ms := byItem[item]
		sort.SliceStable(ms, func(i, j int) bool { return ms[i].Score > ms[j].Score })
		if best && len(ms) > 1 {
			ms = ms[:1]
		}
		links = append(links, ms...)
	}
	if distinct {
		links = distinctLinks(links)
	}

	var f *os.File
	w := io.Writer(os.Stdout)
	if out != "-" {
		if f, err = os.Create(out); err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"external_id", "local_id", "confidence"}); err != nil {
		return err
	}
	linked := map[datalink.Term]struct{}{}
	for _, m := range links {
		linked[m.External] = struct{}{}
		if err := cw.Write([]string{m.External.Value, m.Local.Value, strconv.FormatFloat(m.Score, 'f', 4, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "linkrules classify: %d links over %d of %d external items (threshold %.2f)\n",
		len(links), len(linked), len(items), threshold)
	return nil
}

// distinctLinks enforces one-to-one linking greedily by confidence: walk
// the links in descending score order and drop any that reuse an
// already-linked external or local item. The survivors keep their
// original (per-item) order.
func distinctLinks(links []datalink.Match) []datalink.Match {
	ordered := append([]datalink.Match(nil), links...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Score > ordered[j].Score })
	usedE, usedL := map[datalink.Term]struct{}{}, map[datalink.Term]struct{}{}
	keep := map[datalink.Match]struct{}{}
	for _, m := range ordered {
		if _, dup := usedE[m.External]; dup {
			continue
		}
		if _, dup := usedL[m.Local]; dup {
			continue
		}
		usedE[m.External], usedL[m.Local] = struct{}{}, struct{}{}
		keep[m] = struct{}{}
	}
	out := links[:0]
	for _, m := range links {
		if _, ok := keep[m]; ok {
			out = append(out, m)
		}
	}
	return out
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	out := fs.String("out", "results", "output directory")
	if err := parse(fs, args); err != nil {
		return err
	}
	c, err := cf.buildCorpus()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	linkRows, err := datalink.LinkingExperiment(c, datalink.DefaultLinkingConfig(), datalink.LinkingWorkerCounts())
	if err != nil {
		return err
	}
	tables := map[string]*datalink.ExperimentTable{
		"stats":      datalink.SectionStatsTable(datalink.SectionStats(c)),
		"table1":     datalink.Table1Table(datalink.Table1(c, datalink.PaperBands())),
		"reduction":  datalink.SpaceReductionTable(datalink.SpaceReduction(c, datalink.PaperBands())),
		"ordering":   datalink.OrderingAblationTable(datalink.OrderingAblation(c)),
		"generalize": datalink.GeneralizationTable(datalink.GeneralizationExperiment(c)),
		"link":       datalink.LinkingExperimentTable(linkRows),
	}
	for name, tbl := range tables {
		if err := exportTable(filepath.Join(*out, name), tbl); err != nil {
			return err
		}
		fmt.Printf("wrote %s.txt and %s.csv\n", filepath.Join(*out, name), filepath.Join(*out, name))
	}
	return nil
}

func exportTable(base string, tbl *datalink.ExperimentTable) error {
	txt, err := os.Create(base + ".txt")
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := tbl.Render(txt); err != nil {
		return err
	}
	if err := txt.Close(); err != nil {
		return err
	}
	csvF, err := os.Create(base + ".csv")
	if err != nil {
		return err
	}
	defer csvF.Close()
	if err := tbl.WriteCSV(csvF); err != nil {
		return err
	}
	return csvF.Close()
}

func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	c, err := cf.buildCorpus()
	if err != nil {
		return err
	}
	if err := datalink.SectionStatsTable(datalink.SectionStats(c)).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := datalink.Table1Table(datalink.Table1(c, datalink.PaperBands())).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := datalink.SpaceReductionTable(datalink.SpaceReduction(c, datalink.PaperBands())).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := datalink.OrderingAblationTable(datalink.OrderingAblation(c)).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := datalink.GeneralizationTable(datalink.GeneralizationExperiment(c)).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	linkRows, err := datalink.LinkingExperiment(c, datalink.DefaultLinkingConfig(), datalink.LinkingWorkerCounts())
	if err != nil {
		return err
	}
	if err := datalink.LinkingExperimentTable(linkRows).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	cfg, err := cf.config()
	if err != nil {
		return err
	}
	ds, err := datalink.GenerateCorpus(cfg)
	if err != nil {
		return err
	}
	hs, err := datalink.CrossValidate(ds, datalink.LearnerConfig{SupportThreshold: cf.th}, 5, cf.seed)
	if err != nil {
		return err
	}
	if err := datalink.HoldoutTable(hs).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	// Blocking comparison on a reduced corpus (materialized candidates).
	bc := &corpusFlags{seed: cf.seed, scale: cf.scale, links: 2000, catalog: 8000, th: cf.th}
	if cf.scale == "small" {
		bc.links, bc.catalog = 0, 0
	}
	cb, err := bc.buildCorpus()
	if err != nil {
		return err
	}
	rows := datalink.CompareBlocking(cb, datalink.DefaultBlockingMethods(cb))
	return datalink.BlockingTable(rows).Render(os.Stdout)
}
