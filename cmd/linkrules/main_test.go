package main

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// binary builds the CLI once per test run.
func binary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "linkrules")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building CLI: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("linkrules %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestCLIExperimentsSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)

	t.Run("table1", func(t *testing.T) {
		out := run(t, bin, "table1", "-scale", "small", "-seed", "7")
		for _, want := range []string{"Table 1", "conf.", "paper", "measured"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("reduction", func(t *testing.T) {
		out := run(t, bin, "reduction", "-scale", "small", "-seed", "7")
		if !strings.Contains(out, "reduction") {
			t.Errorf("output:\n%s", out)
		}
	})
	t.Run("ordering", func(t *testing.T) {
		out := run(t, bin, "ordering", "-scale", "small", "-seed", "7")
		if !strings.Contains(out, "confidence,lift (paper)") {
			t.Errorf("output:\n%s", out)
		}
	})
	t.Run("holdout", func(t *testing.T) {
		out := run(t, bin, "holdout", "-scale", "small", "-seed", "7", "-k", "3")
		if !strings.Contains(out, "train (paper protocol)") {
			t.Errorf("output:\n%s", out)
		}
	})
	t.Run("link", func(t *testing.T) {
		out := run(t, bin, "link", "-scale", "small", "-seed", "7", "-workers", "2")
		for _, want := range []string{"In-space linking", "workers", "pairs/s"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("keys", func(t *testing.T) {
		out := run(t, bin, "keys", "-scale", "small", "-top", "3")
		if !strings.Contains(out, "key(") {
			t.Errorf("output:\n%s", out)
		}
	})
	t.Run("toponyms", func(t *testing.T) {
		out := run(t, bin, "toponyms", "-links", "300")
		if !strings.Contains(out, "rules learned") {
			t.Errorf("output:\n%s", out)
		}
	})
}

func TestCLIFilePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus")
	rules := filepath.Join(dir, "rules.tsv")

	out := run(t, bin, "datagen", "-scale", "small", "-seed", "3", "-out", corpus)
	if !strings.Contains(out, "external.nt") {
		t.Fatalf("datagen output:\n%s", out)
	}
	for _, f := range []string{"ontology.nt", "local.nt", "external.nt", "training.nt"} {
		if _, err := os.Stat(filepath.Join(corpus, f)); err != nil {
			t.Fatalf("missing corpus file %s: %v", f, err)
		}
	}

	out = run(t, bin, "learn", "-data", corpus, "-rules", rules, "-th", "0.01",
		"-property", "http://provider.example/prop#partNumber")
	if !strings.Contains(out, "learned") {
		t.Fatalf("learn output:\n%s", out)
	}
	if _, err := os.Stat(rules); err != nil {
		t.Fatalf("rules file missing: %v", err)
	}

	out = run(t, bin, "classify", "-rules", rules,
		"-external", filepath.Join(corpus, "external.nt"), "-limit", "2")
	if !strings.Contains(out, "->") && !strings.Contains(out, "no external item") {
		t.Fatalf("classify output:\n%s", out)
	}
}

func TestCLIExport(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	dir := filepath.Join(t.TempDir(), "results")
	run(t, bin, "export", "-scale", "small", "-seed", "5", "-out", dir)
	for _, f := range []string{"table1.txt", "table1.csv", "stats.csv", "reduction.csv", "generalize.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing export %s: %v", f, err)
		}
	}
}

// TestCLIServe boots the live service on an ephemeral port, waits for
// the printed address, and drives the HTTP API end to end: status, a
// link query, and an upsert that must be visible to the next query.
func TestCLIServe(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	cmd := exec.Command(bin, "serve", "-scale", "small", "-seed", "7", "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()
	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			base = addr
			break
		}
	}
	if base == "" {
		t.Fatalf("server never printed its address: %v", sc.Err())
	}

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, b)
		}
		return string(b)
	}
	post := func(path, body string) string {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d %s", path, resp.StatusCode, b)
		}
		return string(b)
	}

	if out := get("/healthz"); !strings.Contains(out, `"ok":true`) {
		t.Fatalf("healthz: %s", out)
	}
	if out := get("/v1/status"); !strings.Contains(out, `"learned":true`) {
		t.Fatalf("status: %s", out)
	}
	linkOut := post("/v1/link", `{"items":["http://provider.example/item/D000000"],"top_k":1}`)
	if !strings.Contains(linkOut, "matches") {
		t.Fatalf("link: %s", linkOut)
	}
	post("/v1/items/upsert", `{"side":"external","items":[{"id":"http://provider.example/item/D000000","properties":{"http://provider.example/prop#partNumber":["ZZZ-NOPE-999"]}}]}`)
	after := post("/v1/link", `{"items":["http://provider.example/item/D000000"],"top_k":1}`)
	if after == linkOut {
		t.Fatal("upsert had no effect on the following link query")
	}

	// The metrics endpoint serves valid exposition text covering the
	// traffic above: requests by path, stage timings from the link
	// queries, and the upsert counted under its route.
	metrics := get("/metrics")
	if errs := obs.Lint(metrics); errs != nil {
		t.Errorf("/metrics output fails exposition lint: %v", errs)
	}
	for _, want := range []string{
		`linkrules_http_requests_total{path="/v1/link",code="200"} 2`,
		`linkrules_http_requests_total{path="/v1/items/upsert",code="200"} 1`,
		`linkrules_stage_seconds_count{stage="scoring"} 2`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

func TestCLIUnknownCommandFails(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	cmd := exec.Command(bin, "bogus")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("unknown command succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown command") {
		t.Errorf("stderr:\n%s", out)
	}
}
