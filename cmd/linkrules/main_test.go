package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// binary builds the CLI once per test run.
func binary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "linkrules")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building CLI: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("linkrules %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestCLIExperimentsSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)

	t.Run("table1", func(t *testing.T) {
		out := run(t, bin, "table1", "-scale", "small", "-seed", "7")
		for _, want := range []string{"Table 1", "conf.", "paper", "measured"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("reduction", func(t *testing.T) {
		out := run(t, bin, "reduction", "-scale", "small", "-seed", "7")
		if !strings.Contains(out, "reduction") {
			t.Errorf("output:\n%s", out)
		}
	})
	t.Run("ordering", func(t *testing.T) {
		out := run(t, bin, "ordering", "-scale", "small", "-seed", "7")
		if !strings.Contains(out, "confidence,lift (paper)") {
			t.Errorf("output:\n%s", out)
		}
	})
	t.Run("holdout", func(t *testing.T) {
		out := run(t, bin, "holdout", "-scale", "small", "-seed", "7", "-k", "3")
		if !strings.Contains(out, "train (paper protocol)") {
			t.Errorf("output:\n%s", out)
		}
	})
	t.Run("link", func(t *testing.T) {
		out := run(t, bin, "link", "-scale", "small", "-seed", "7", "-workers", "2")
		for _, want := range []string{"In-space linking", "workers", "pairs/s"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("keys", func(t *testing.T) {
		out := run(t, bin, "keys", "-scale", "small", "-top", "3")
		if !strings.Contains(out, "key(") {
			t.Errorf("output:\n%s", out)
		}
	})
	t.Run("toponyms", func(t *testing.T) {
		out := run(t, bin, "toponyms", "-links", "300")
		if !strings.Contains(out, "rules learned") {
			t.Errorf("output:\n%s", out)
		}
	})
}

func TestCLIFilePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus")
	rules := filepath.Join(dir, "rules.tsv")

	out := run(t, bin, "datagen", "-scale", "small", "-seed", "3", "-out", corpus)
	if !strings.Contains(out, "external.nt") {
		t.Fatalf("datagen output:\n%s", out)
	}
	for _, f := range []string{"ontology.nt", "local.nt", "external.nt", "training.nt"} {
		if _, err := os.Stat(filepath.Join(corpus, f)); err != nil {
			t.Fatalf("missing corpus file %s: %v", f, err)
		}
	}

	out = run(t, bin, "learn", "-data", corpus, "-rules", rules, "-th", "0.01",
		"-property", "http://provider.example/prop#partNumber")
	if !strings.Contains(out, "learned") {
		t.Fatalf("learn output:\n%s", out)
	}
	if _, err := os.Stat(rules); err != nil {
		t.Fatalf("rules file missing: %v", err)
	}

	out = run(t, bin, "classify", "-rules", rules,
		"-external", filepath.Join(corpus, "external.nt"), "-limit", "2")
	if !strings.Contains(out, "->") && !strings.Contains(out, "no external item") {
		t.Fatalf("classify output:\n%s", out)
	}
}

func TestCLIExport(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	dir := filepath.Join(t.TempDir(), "results")
	run(t, bin, "export", "-scale", "small", "-seed", "5", "-out", dir)
	for _, f := range []string{"table1.txt", "table1.csv", "stats.csv", "reduction.csv", "generalize.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing export %s: %v", f, err)
		}
	}
}

func TestCLIUnknownCommandFails(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	cmd := exec.Command(bin, "bogus")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("unknown command succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown command") {
		t.Errorf("stderr:\n%s", out)
	}
}
