package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIBenchSmoke runs the bench subcommand in smoke mode and checks
// the report: schema tag, every phase populated, and sane values. This
// is the same invocation CI uses, so a broken bench fails here first.
func TestCLIBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	out := filepath.Join(t.TempDir(), "BENCH.json")
	stderr := run(t, bin, "bench", "-smoke", "-out", out)
	for _, want := range []string{"upsert", "learn", "link queries", "wal"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("bench progress output lacks %q:\n%s", want, stderr)
		}
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("bench wrote no report: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, raw)
	}
	if rep.Schema != "linkrules-bench/1" {
		t.Errorf("schema = %q, want linkrules-bench/1", rep.Schema)
	}
	if !rep.Smoke {
		t.Error("report does not record smoke mode")
	}
	if rep.Timestamp == "" || rep.GoVersion == "" || rep.CPUs < 1 {
		t.Errorf("environment block incomplete: %+v", rep)
	}
	if rep.Upsert.Items == 0 || rep.Upsert.ItemsPerSec <= 0 {
		t.Errorf("upsert phase empty: %+v", rep.Upsert)
	}
	if rep.Learn.Rules == 0 || rep.Learn.Seconds <= 0 {
		t.Errorf("learn phase empty: %+v", rep.Learn)
	}
	if rep.Link.Queries == 0 || rep.Link.P50Ms <= 0 || rep.Link.P99Ms < rep.Link.P50Ms {
		t.Errorf("link phase implausible: %+v", rep.Link)
	}
	if rep.WAL.Appends == 0 || rep.WAL.Bytes == 0 {
		t.Errorf("wal phase empty: %+v", rep.WAL)
	}
	// The report must marshal back to the same schema keys — a field
	// rename would silently break the cross-commit trajectory.
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "timestamp", "go_version", "goos", "goarch", "cpus", "smoke", "corpus", "upsert", "learn", "link", "wal"} {
		if _, ok := m[key]; !ok {
			t.Errorf("report lacks top-level key %q", key)
		}
	}
}
