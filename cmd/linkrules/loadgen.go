package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	datalink "repro"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

// cmdLoadgen drives a linking service with a sustained mixed workload at
// a target request rate and reports whether it held its latency SLO.
// Where `bench` measures isolated phase throughput (how fast can one
// client push the pipeline), loadgen measures the service under
// concurrent open-loop load: link queries, item re-upserts and full
// relearns arriving together, the way production traffic does.
//
// The target is either a running server (-addr, scraped over HTTP) or an
// in-process durable service built from the corpus flags — the same
// stack `serve` runs, minus the network. Either way the harness scrapes
// /metrics before and after the run and diffs the two scrapes, so the
// report carries both sides of the story: client-observed latency
// (sampled from each request's scheduled start, so queueing delay is
// included — no coordinated omission) and the server's own histogram
// and counter deltas over exactly the load window.
//
// The report ("linkrules-loadgen/1", stable schema: only add fields) is
// the PR-trajectory artifact; -slo-p99 turns it into a gate — the exit
// status is non-zero when the link p99 misses the target.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	cf := addCorpusFlags(fs)
	addr := fs.String("addr", "", "target a running service at HOST:PORT (empty: in-process service)")
	qps := fs.Float64("qps", 10, "target request rate (open loop)")
	duration := fs.Duration("duration", 15*time.Second, "load window length")
	workers := fs.Int("workers", 4, "concurrent client workers")
	mixFlag := fs.String("mix", "link=90,upsert=9,learn=1", "op mix weights: link=N,upsert=N,learn=N")
	topK := fs.Int("top", 3, "matches requested per item in link queries")
	perQuery := fs.Int("items-per-query", 4, "external items per link query")
	sloP99 := fs.Float64("slo-p99", 0, "fail (exit non-zero) unless link p99 latency <= this many ms (0: report only)")
	out := fs.String("out", "BENCH_8.json", "report file (- writes to stdout)")
	smoke := fs.Bool("smoke", false, "tiny corpus and short window, for CI smoke runs")
	apiKey := fs.String("api-key", "", "X-API-Key header sent with every request")
	fsyncMode := fs.String("fsync", "interval", "WAL fsync policy for the in-process store: never, interval or always")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *smoke {
		if cf.scale == "paper" {
			cf.scale = "small"
		}
		if cf.links == 0 {
			cf.links = 150
		}
		if cf.catalog == 0 {
			cf.catalog = 500
		}
		if *duration == 15*time.Second {
			*duration = 2 * time.Second
		}
		if *qps == 10 {
			*qps = 20
		}
		if *workers == 4 {
			*workers = 2
		}
	}
	if *qps <= 0 || *duration <= 0 || *workers < 1 || *perQuery < 1 {
		return fmt.Errorf("-qps, -duration, -workers and -items-per-query must be positive")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}

	cfg, err := cf.config()
	if err != nil {
		return err
	}
	ds, err := datalink.GenerateCorpus(cfg)
	if err != nil {
		return err
	}
	specs := externalItemSpecs(ds.External)
	if len(specs) == 0 {
		return fmt.Errorf("corpus has no external items")
	}
	fmt.Fprintf(os.Stderr, "linkrules loadgen: %s corpus, seed %d (%d external items, |TS| %d)\n",
		cf.scale, cf.seed, len(specs), ds.Training.Len())

	target, targetMode, err := buildTarget(cf, ds, *addr, *apiKey, *fsyncMode)
	if err != nil {
		return err
	}
	defer target.close()
	if err := warmTarget(target, specs, ds); err != nil {
		return err
	}

	work, err := buildWorkload(specs, ds, *perQuery, *topK)
	if err != nil {
		return err
	}

	before, err := target.scrape()
	if err != nil {
		return fmt.Errorf("pre-run scrape: %v", err)
	}

	results := runLoad(target, work, mix, *qps, *duration, *workers, cf.seed)

	after, err := target.scrape()
	if err != nil {
		return fmt.Errorf("post-run scrape: %v", err)
	}

	rep := loadgenReport{
		Schema:    "linkrules-loadgen/1",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Smoke:     *smoke,
		Build:     obs.Build(),
		Target:    loadgenTarget{Mode: targetMode, Addr: *addr, Fsync: *fsyncMode},
		Workload: loadgenWorkload{
			TargetQPS:     *qps,
			DurationSec:   duration.Seconds(),
			Workers:       *workers,
			Mix:           mix,
			ItemsPerQuery: *perQuery,
			TopK:          *topK,
			Seed:          cf.seed,
		},
		Corpus: benchCorpus{
			Scale:           cf.scale,
			Seed:            cf.seed,
			TrainingLinks:   ds.Training.Len(),
			ExternalItems:   len(specs),
			ExternalTriples: ds.External.Len(),
			LocalTriples:    ds.Local.Len(),
		},
		Client: summarizeClient(results, *duration),
		Server: summarizeServer(before, after),
	}
	linkP99 := rep.Client.PerOp["link"].P99Ms
	if *sloP99 > 0 {
		rep.SLO = &loadgenSLO{TargetP99Ms: *sloP99, LinkP99Ms: linkP99, Pass: linkP99 <= *sloP99}
	}
	fmt.Fprintf(os.Stderr,
		"linkrules loadgen: %d requests in %.1fs (%.1f qps of %.1f target): link p50 %.2fms p99 %.2fms, %d rejected, %d errors\n",
		rep.Client.Requests, duration.Seconds(), rep.Client.AchievedQPS, *qps,
		rep.Client.PerOp["link"].P50Ms, linkP99, rep.Client.Rejected429, rep.Client.Errors5xx+rep.Client.TransportErrors)
	if !rep.Server.ScrapeLintClean {
		fmt.Fprintln(os.Stderr, "linkrules loadgen: WARNING: post-run /metrics scrape is not lint-clean")
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(enc); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "linkrules loadgen: wrote %s\n", *out)
	}
	if rep.SLO != nil && !rep.SLO.Pass {
		return fmt.Errorf("SLO failed: link p99 %.2fms > target %.2fms", linkP99, *sloP99)
	}
	return nil
}

// parseMix parses "link=90,upsert=9,learn=1" into weights. Unknown ops
// and all-zero mixes are rejected.
func parseMix(s string) (map[string]int, error) {
	mix := map[string]int{}
	total := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight, found := strings.Cut(part, "=")
		if !found {
			return nil, fmt.Errorf("bad -mix entry %q (want op=weight)", part)
		}
		switch name {
		case "link", "upsert", "learn":
		default:
			return nil, fmt.Errorf("unknown op %q in -mix (want link, upsert or learn)", name)
		}
		w, err := strconv.Atoi(weight)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad weight %q for op %q", weight, name)
		}
		mix[name] = w
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("-mix has no positive weights")
	}
	return mix, nil
}

// lgTarget abstracts where the load lands: an in-process handler or a
// live server over HTTP. do never fails on HTTP-level errors — the
// status code is the measurement; err is transport-only.
type lgTarget interface {
	do(method, path string, body []byte) (status int, resp []byte, err error)
	scrape() (string, error)
	close()
}

// handlerTarget drives the in-process service directly, like bench.
type handlerTarget struct {
	h   http.Handler
	svc *service.Service
	dir string
	key string
}

func (t *handlerTarget) do(method, path string, body []byte) (int, []byte, error) {
	req, err := http.NewRequest(method, "http://loadgen.invalid"+path, strings.NewReader(string(body)))
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if t.key != "" {
		req.Header.Set("X-API-Key", t.key)
	}
	rw := &benchRecorder{}
	t.h.ServeHTTP(rw, req)
	return rw.code, rw.body.Bytes(), nil
}

func (t *handlerTarget) scrape() (string, error) {
	code, body, err := t.do("GET", "/metrics", nil)
	if err != nil || code != http.StatusOK {
		return "", fmt.Errorf("scrape: %d %v", code, err)
	}
	return string(body), nil
}

func (t *handlerTarget) close() {
	t.svc.Close()
	os.RemoveAll(t.dir)
}

// httpTarget drives a running server. Responses are drained so
// keep-alive connections get reused — the client must not become the
// bottleneck it is measuring.
type httpTarget struct {
	base string
	key  string
	c    *http.Client
}

func (t *httpTarget) do(method, path string, body []byte) (int, []byte, error) {
	req, err := http.NewRequest(method, t.base+path, strings.NewReader(string(body)))
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if t.key != "" {
		req.Header.Set("X-API-Key", t.key)
	}
	resp, err := t.c.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, b, nil
}

func (t *httpTarget) scrape() (string, error) {
	code, body, err := t.do("GET", "/metrics", nil)
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", fmt.Errorf("scrape: status %d", code)
	}
	return string(body), nil
}

func (t *httpTarget) close() { t.c.CloseIdleConnections() }

// buildTarget resolves -addr: empty builds the same durable stack bench
// uses (temp store, flight recorder on defaults); otherwise the load
// goes over HTTP to the given server.
func buildTarget(cf *corpusFlags, ds *datalink.Dataset, addr, apiKey, fsyncMode string) (lgTarget, string, error) {
	if addr != "" {
		base := addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		return &httpTarget{
			base: strings.TrimSuffix(base, "/"),
			key:  apiKey,
			c:    &http.Client{Timeout: 2 * time.Minute},
		}, "http", nil
	}
	mode, err := store.ParseFsyncMode(fsyncMode)
	if err != nil {
		return nil, "", err
	}
	dir, err := os.MkdirTemp("", "linkrules-loadgen-*")
	if err != nil {
		return nil, "", err
	}
	reg := obs.NewRegistry()
	st, rec, err := store.Open(dir, store.Options{
		Fsync:         mode,
		SnapshotEvery: -1, // no auto-checkpoints: runs stay comparable
		Metrics:       store.NewMetrics(reg),
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", err
	}
	seed := &service.Seed{
		External: ds.External,
		Local:    ds.Local,
		Ontology: ds.Ontology,
		Training: ds.Training.Links,
	}
	svc, err := service.Restore(st, rec, seed, service.Options{
		Learner:       datalink.LearnerConfig{SupportThreshold: cf.th},
		DefaultLinker: datalink.DefaultLinkingConfig(),
		Metrics:       reg,
	})
	if err != nil {
		st.Close()
		os.RemoveAll(dir)
		return nil, "", err
	}
	return &handlerTarget{h: svc.Handler(), svc: svc, dir: dir, key: apiKey}, "inprocess", nil
}

// warmTarget makes sure the target can answer link queries: if its
// status says no corpus or no model, the corpus is upserted and learned
// through the API. An already-seeded server is left untouched — it is
// assumed to hold the same corpus (start `serve` with the same corpus
// flags).
func warmTarget(target lgTarget, specs []benchItem, ds *datalink.Dataset) error {
	code, body, err := target.do("GET", "/v1/status", nil)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("target status: %d %v", code, err)
	}
	var status struct {
		ExternalTriples int  `json:"external_triples"`
		Learned         bool `json:"learned"`
	}
	if err := json.Unmarshal(body, &status); err != nil {
		return fmt.Errorf("target status: %v", err)
	}
	if status.ExternalTriples == 0 {
		fmt.Fprintf(os.Stderr, "linkrules loadgen: target is empty, bulk-ingesting %d items\n", len(specs))
		// One streaming bulk request; the server chunks it into batch
		// commits itself. (NDJSON is the bulk endpoint's default format,
		// so the target's application/json content type is fine.)
		b, err := ndjsonItems(specs)
		if err != nil {
			return err
		}
		if code, resp, err := target.do("POST", "/v1/items/bulk?side=external", b); err != nil || code != http.StatusOK {
			return fmt.Errorf("warm bulk ingest: %d %s %v", code, resp, err)
		}
	}
	if !status.Learned {
		fmt.Fprintln(os.Stderr, "linkrules loadgen: target has no model, learning")
		b, err := learnOpBody(ds)
		if err != nil {
			return err
		}
		if code, resp, err := target.do("POST", "/v1/learn", b); err != nil || code != http.StatusOK {
			return fmt.Errorf("warm learn: %d %s %v", code, resp, err)
		}
	}
	return nil
}

// lgWorkload holds the pre-marshaled request bodies. Everything is
// built before the clock starts so the load loop does no JSON encoding.
type lgWorkload struct {
	linkBodies   [][]byte // rotated deterministically
	upsertBodies [][]byte // idempotent re-upserts of existing items
	learnBody    []byte   // full training set with replace:true
}

func buildWorkload(specs []benchItem, ds *datalink.Dataset, perQuery, topK int) (*lgWorkload, error) {
	w := &lgWorkload{}
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	n := min(perQuery, len(ids))
	for q := 0; q < 64; q++ {
		items := make([]string, n)
		for j := range items {
			items[j] = ids[(q*31+j*7)%len(ids)]
		}
		b, err := json.Marshal(map[string]any{"items": items, "top_k": topK})
		if err != nil {
			return nil, err
		}
		w.linkBodies = append(w.linkBodies, b)
	}
	const batch = 8
	for i := 0; i < len(specs) && len(w.upsertBodies) < 32; i += batch {
		end := min(i+batch, len(specs))
		b, err := json.Marshal(map[string]any{"side": "external", "items": specs[i:end]})
		if err != nil {
			return nil, err
		}
		w.upsertBodies = append(w.upsertBodies, b)
	}
	var err error
	if w.learnBody, err = learnOpBody(ds); err != nil {
		return nil, err
	}
	return w, nil
}

// learnOpBody marshals the full training set as a replace-learn: the
// op is idempotent, so any number of them during the run converges to
// the same model.
func learnOpBody(ds *datalink.Dataset) ([]byte, error) {
	links := make([]map[string]string, 0, ds.Training.Len())
	for _, l := range ds.Training.Links {
		links = append(links, map[string]string{"external": l.External.Value, "local": l.Local.Value})
	}
	return json.Marshal(map[string]any{"links": links, "replace": true})
}

// lgOp is one scheduled request; due is its open-loop dispatch slot.
type lgOp struct {
	kind string
	body []byte
	due  time.Time
}

// lgResult is one completed request: latency is measured from the op's
// scheduled slot, not from when a worker got to it, so a stalled server
// shows up as tail latency instead of silently lowering the rate
// (coordinated omission).
type lgResult struct {
	kind         string
	status       int
	ms           float64
	transportErr bool
}

// runLoad dispatches ops open-loop at the target rate for the window
// and returns every completed request. The op sequence is drawn from a
// seeded PCG, so two runs with the same seed issue the identical
// request stream.
func runLoad(target lgTarget, work *lgWorkload, mix map[string]int, qps float64, duration time.Duration, workers int, seed int64) []lgResult {
	rng := rand.New(rand.NewPCG(uint64(seed), 0x9e3779b97f4a7c15))
	order := []string{"link", "upsert", "learn"}
	total := 0
	for _, op := range order {
		total += mix[op]
	}
	pick := func() string {
		r := rng.IntN(total)
		for _, op := range order {
			if r < mix[op] {
				return op
			}
			r -= mix[op]
		}
		return "link"
	}
	counters := map[string]int{}
	bodyFor := func(kind string) []byte {
		i := counters[kind]
		counters[kind]++
		switch kind {
		case "link":
			return work.linkBodies[i%len(work.linkBodies)]
		case "upsert":
			return work.upsertBodies[i%len(work.upsertBodies)]
		default:
			return work.learnBody
		}
	}
	pathFor := func(kind string) string {
		switch kind {
		case "link":
			return "/v1/link"
		case "upsert":
			return "/v1/items/upsert"
		default:
			return "/v1/learn"
		}
	}

	ch := make(chan lgOp, workers*4)
	go func() {
		defer close(ch)
		interval := time.Duration(float64(time.Second) / qps)
		next := time.Now()
		deadline := next.Add(duration)
		for {
			if time.Now().After(deadline) {
				return
			}
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			kind := pick()
			ch <- lgOp{kind: kind, body: bodyFor(kind), due: next}
			next = next.Add(interval)
		}
	}()

	perWorker := make([][]lgResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := range ch {
				status, _, err := target.do("POST", pathFor(op.kind), op.body)
				perWorker[w] = append(perWorker[w], lgResult{
					kind:         op.kind,
					status:       status,
					ms:           time.Since(op.due).Seconds() * 1e3,
					transportErr: err != nil,
				})
			}
		}(w)
	}
	wg.Wait()

	var all []lgResult
	for _, rs := range perWorker {
		all = append(all, rs...)
	}
	return all
}

// summarizeClient folds the raw results into the report's client block.
func summarizeClient(results []lgResult, duration time.Duration) loadgenClient {
	c := loadgenClient{PerOp: map[string]loadgenOpStats{}}
	byOp := map[string][]float64{}
	var allMs []float64
	for _, r := range results {
		c.Requests++
		switch {
		case r.transportErr:
			c.TransportErrors++
		case r.status == http.StatusOK:
			c.OK++
		case r.status == http.StatusTooManyRequests:
			c.Rejected429++
		case r.status >= 500:
			c.Errors5xx++
		default:
			c.Errors4xx++
		}
		allMs = append(allMs, r.ms)
		if !r.transportErr && r.status == http.StatusOK {
			byOp[r.kind] = append(byOp[r.kind], r.ms)
		}
		op := c.PerOp[r.kind]
		op.Requests++
		if !r.transportErr && r.status == http.StatusOK {
			op.OK++
		}
		c.PerOp[r.kind] = op
	}
	sort.Float64s(allMs)
	c.AchievedQPS = rate(float64(c.Requests), duration.Seconds())
	c.P50Ms = percentile(allMs, 50)
	c.P95Ms = percentile(allMs, 95)
	c.P99Ms = percentile(allMs, 99)
	c.MeanMs = mean(allMs)
	if n := len(allMs); n > 0 {
		c.MaxMs = allMs[n-1]
	}
	for kind, ms := range byOp {
		sort.Float64s(ms)
		op := c.PerOp[kind]
		op.P50Ms = percentile(ms, 50)
		op.P99Ms = percentile(ms, 99)
		op.MeanMs = mean(ms)
		c.PerOp[kind] = op
	}
	return c
}

// summarizeServer diffs the pre/post scrapes into the report's server
// block: request and stage counter deltas over the window, the server's
// own /v1/link latency quantiles estimated from its histogram buckets,
// runtime signals, and whether the exposition stayed lint-clean with
// all collectors registered.
func summarizeServer(before, after string) loadgenServer {
	s := loadgenServer{
		RequestsTotal: map[string]float64{},
		Stages:        map[string]loadgenStage{},
	}
	s.ScrapeLintClean = obs.Lint(after) == nil
	bs, errB := obs.ParseText(before)
	as, errA := obs.ParseText(after)
	if errB != nil || errA != nil {
		s.ScrapeParseError = fmt.Sprintf("%v %v", errB, errA)
		return s
	}
	prev := map[string]float64{}
	for _, sv := range bs {
		prev[sv.Key()] = sv.Value
	}
	delta := func(sv obs.SampleValue) float64 { return sv.Value - prev[sv.Key()] }

	var linkBuckets []histBucket
	for _, sv := range as {
		switch sv.Name {
		case "linkrules_http_requests_total":
			if d := delta(sv); d > 0 {
				s.RequestsTotal[sv.Labels["path"]+" "+sv.Labels["code"]] = d
			}
		case "linkrules_stage_seconds_count":
			st := s.Stages[sv.Labels["stage"]]
			st.Count = delta(sv)
			s.Stages[sv.Labels["stage"]] = st
		case "linkrules_stage_seconds_sum":
			st := s.Stages[sv.Labels["stage"]]
			st.SumSeconds = delta(sv)
			s.Stages[sv.Labels["stage"]] = st
		case "linkrules_http_request_seconds_bucket":
			if sv.Labels["path"] == "/v1/link" {
				le, err := parseLE(sv.Labels["le"])
				if err == nil {
					linkBuckets = append(linkBuckets, histBucket{le: le, count: delta(sv)})
				}
			}
		case "go_goroutines":
			s.GoroutinesAfter = sv.Value
		case "go_gc_cycles_total":
			s.GCCyclesDelta = delta(sv)
		}
	}
	for stage, st := range s.Stages {
		if st.Count == 0 && st.SumSeconds == 0 {
			delete(s.Stages, stage)
		}
	}
	sort.Slice(linkBuckets, func(i, j int) bool { return linkBuckets[i].le < linkBuckets[j].le })
	s.LinkP50Ms = histQuantile(0.50, linkBuckets) * 1e3
	s.LinkP99Ms = histQuantile(0.99, linkBuckets) * 1e3
	return s
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// histBucket is one cumulative bucket delta (le upper bound, count).
type histBucket struct{ le, count float64 }

// histQuantile estimates a quantile from cumulative bucket deltas by
// linear interpolation inside the bucket holding the target rank — the
// standard Prometheus histogram_quantile estimate. Returns 0 with no
// observations; the +Inf bucket clamps to the highest finite bound.
func histQuantile(q float64, buckets []histBucket) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].count
	if total <= 0 {
		return 0
	}
	rank := q * total
	lower, lowerCount := 0.0, 0.0
	for _, b := range buckets {
		if b.count >= rank {
			if math.IsInf(b.le, 1) {
				return lower
			}
			width := b.le - lower
			inBucket := b.count - lowerCount
			if inBucket <= 0 {
				return b.le
			}
			return lower + width*(rank-lowerCount)/inBucket
		}
		if !math.IsInf(b.le, 1) {
			lower = b.le
		}
		lowerCount = b.count
	}
	return lower
}

// loadgenReport is the stable machine-readable schema
// ("linkrules-loadgen/1"). Only add fields; never rename or repurpose
// existing ones — trajectory tooling compares reports across commits.
type loadgenReport struct {
	Schema    string          `json:"schema"`
	Timestamp string          `json:"timestamp"`
	GoVersion string          `json:"go_version"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	CPUs      int             `json:"cpus"`
	Smoke     bool            `json:"smoke"`
	Build     obs.BuildInfo   `json:"build"`
	Target    loadgenTarget   `json:"target"`
	Workload  loadgenWorkload `json:"workload"`
	Corpus    benchCorpus     `json:"corpus"`
	Client    loadgenClient   `json:"client"`
	Server    loadgenServer   `json:"server"`
	SLO       *loadgenSLO     `json:"slo,omitempty"`
}

type loadgenTarget struct {
	Mode  string `json:"mode"` // "inprocess" or "http"
	Addr  string `json:"addr,omitempty"`
	Fsync string `json:"fsync,omitempty"`
}

type loadgenWorkload struct {
	TargetQPS     float64        `json:"target_qps"`
	DurationSec   float64        `json:"duration_sec"`
	Workers       int            `json:"workers"`
	Mix           map[string]int `json:"mix"`
	ItemsPerQuery int            `json:"items_per_query"`
	TopK          int            `json:"top_k"`
	Seed          int64          `json:"seed"`
}

// loadgenClient is the client-observed view. Latencies are milliseconds
// from each op's scheduled dispatch slot to completion (queueing
// included), over all requests; per-op quantiles cover OK responses.
type loadgenClient struct {
	Requests        int                       `json:"requests"`
	OK              int                       `json:"ok"`
	Rejected429     int                       `json:"rejected_429"`
	Errors4xx       int                       `json:"errors_4xx"`
	Errors5xx       int                       `json:"errors_5xx"`
	TransportErrors int                       `json:"transport_errors"`
	AchievedQPS     float64                   `json:"achieved_qps"`
	P50Ms           float64                   `json:"p50_ms"`
	P95Ms           float64                   `json:"p95_ms"`
	P99Ms           float64                   `json:"p99_ms"`
	MeanMs          float64                   `json:"mean_ms"`
	MaxMs           float64                   `json:"max_ms"`
	PerOp           map[string]loadgenOpStats `json:"per_op"`
}

type loadgenOpStats struct {
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
}

// loadgenServer is the server's own view of the window, diffed from the
// pre/post /metrics scrapes.
type loadgenServer struct {
	RequestsTotal    map[string]float64      `json:"requests_total"` // "path code" -> delta
	Stages           map[string]loadgenStage `json:"stage_seconds"`
	LinkP50Ms        float64                 `json:"link_p50_ms"` // histogram estimate
	LinkP99Ms        float64                 `json:"link_p99_ms"`
	GoroutinesAfter  float64                 `json:"goroutines_after"`
	GCCyclesDelta    float64                 `json:"gc_cycles_delta"`
	ScrapeLintClean  bool                    `json:"scrape_lint_clean"`
	ScrapeParseError string                  `json:"scrape_parse_error,omitempty"`
}

type loadgenStage struct {
	Count      float64 `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
}

type loadgenSLO struct {
	TargetP99Ms float64 `json:"target_p99_ms"`
	LinkP99Ms   float64 `json:"link_p99_ms"`
	Pass        bool    `json:"pass"`
}
