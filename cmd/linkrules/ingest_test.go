package main

import (
	"bufio"
	"encoding/csv"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	datalink "repro"
)

// TestCLIIngestStore drives `linkrules ingest -store`: NDJSON with a bad
// line lands with per-line error reporting, a second run reopens the
// store and removes, and an N-Triples corpus file is auto-detected by
// extension.
func TestCLIIngestStore(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")

	ndjson := filepath.Join(dir, "items.ndjson")
	lines := []string{
		`{"id":"http://ex.org/a","properties":{"http://ex.org/pn":["A-1"]}}`,
		`{"id":"http://ex.org/b","properties":{"http://ex.org/pn":["B-2"]}}`,
		`not json`,
		`{"id":"http://ex.org/c","properties":{"http://ex.org/pn":["C-3"]}}`,
	}
	if err := os.WriteFile(ndjson, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "ingest", "-store", storeDir, "-file", ndjson)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ingest: %v\n%s", err, out)
	}
	for _, want := range []string{"3 upserted, 0 removed in 1 batches", "1 errors", "line 3"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("ingest output missing %q:\n%s", want, out)
		}
	}

	// The next run must recover the store's state before committing.
	cmd = exec.Command(bin, "ingest", "-store", storeDir)
	cmd.Stdin = strings.NewReader(`{"id":"http://ex.org/a","remove":true}` + "\n")
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ingest remove: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 upserted, 1 removed") {
		t.Errorf("remove output:\n%s", out)
	}

	// N-Triples corpus file, format picked by the .nt extension.
	corpus := filepath.Join(dir, "corpus")
	run(t, bin, "datagen", "-scale", "small", "-seed", "3", "-out", corpus)
	out3 := run(t, bin, "ingest", "-store", filepath.Join(dir, "store2"),
		"-file", filepath.Join(corpus, "external.nt"), "-side", "external", "-bulk-batch", "200")
	if !strings.Contains(out3, ", 0 errors") || strings.Contains(out3, " 0 upserted") {
		t.Errorf("ntriples ingest output:\n%s", out3)
	}
}

// TestCLIIngestServe streams NDJSON from stdin into a running server
// through the bulk endpoint.
func TestCLIIngestServe(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	srv := exec.Command(bin, "serve", "-scale", "small", "-seed", "7", "-addr", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = srv.Process.Kill()
		_ = srv.Wait()
	}()
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "listening on http://"); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatalf("server never printed its address: %v", sc.Err())
	}

	cmd := exec.Command(bin, "ingest", "-addr", addr, "-side", "external", "-bulk-batch", "1")
	cmd.Stdin = strings.NewReader(strings.Join([]string{
		`{"id":"http://provider.example/item/NEW1","properties":{"http://provider.example/prop#partNumber":["ZZ-NEW-1"]}}`,
		`{"id":"http://provider.example/item/NEW2","properties":{"http://provider.example/prop#partNumber":["ZZ-NEW-2"]}}`,
	}, "\n") + "\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ingest -addr: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "2 upserted, 0 removed in 2 batches") {
		t.Errorf("ingest output:\n%s", out)
	}
}

// TestCLIClassifyCSV runs the batch linking workflow end to end: train
// on the corpus, link, filter, and emit the CSV.
func TestCLIClassifyCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus")
	run(t, bin, "datagen", "-scale", "small", "-seed", "3", "-out", corpus)

	csvPath := filepath.Join(dir, "links.csv")
	run(t, bin, "classify", "-data", corpus, "-csv", csvPath,
		"-threshold", "0.4", "-best", "-distinct")
	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("CSV has %d rows, want header plus links", len(rows))
	}
	if got := strings.Join(rows[0], ","); got != "external_id,local_id,confidence" {
		t.Fatalf("CSV header %q", got)
	}
	seenE, seenL := map[string]bool{}, map[string]bool{}
	for _, row := range rows[1:] {
		if len(row) != 3 {
			t.Fatalf("row %v has %d fields", row, len(row))
		}
		conf, err := strconv.ParseFloat(row[2], 64)
		if err != nil || conf < 0.4 {
			t.Errorf("row %v: confidence %q below threshold", row, row[2])
		}
		if seenE[row[0]] || seenL[row[1]] {
			t.Errorf("row %v violates -best/-distinct one-to-one", row)
		}
		seenE[row[0]], seenL[row[1]] = true, true
	}
}

// TestCLIDatagenStream pins the CLI streaming contract: -stream writes
// the same corpus as the materializing path, line order aside.
func TestCLIDatagenStream(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	dir := t.TempDir()
	materialized := filepath.Join(dir, "mat")
	streamed := filepath.Join(dir, "stream")
	run(t, bin, "datagen", "-scale", "small", "-seed", "9", "-out", materialized)
	out := run(t, bin, "datagen", "-scale", "small", "-seed", "9", "-out", streamed, "-stream")
	if !strings.Contains(out, "streamed") {
		t.Fatalf("stream output:\n%s", out)
	}
	for _, name := range []string{"ontology.nt", "local.nt", "external.nt", "training.nt"} {
		mg, err := readGraph(filepath.Join(materialized, name))
		if err != nil {
			t.Fatal(err)
		}
		sg, err := readGraph(filepath.Join(streamed, name))
		if err != nil {
			t.Fatal(err)
		}
		if text(t, mg) != text(t, sg) {
			t.Errorf("%s: streamed corpus diverged from materialized", name)
		}
	}
}

func text(t *testing.T, g *datalink.Graph) string {
	t.Helper()
	var b strings.Builder
	if err := datalink.WriteNTriples(&b, g); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
