package main

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// lockedBuffer synchronizes the exec copier goroutine's writes with the
// test's reads — reading a plain bytes.Buffer while the child still
// writes is a data race under -race.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// serveProc is one running `linkrules serve` under test.
type serveProc struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	stderr *lockedBuffer
}

// startServe launches the serve subcommand and waits for the printed
// listen address.
func startServe(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"serve", "-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr := &lockedBuffer{}
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, stderr: stderr}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			p.base = addr
			return p
		}
	}
	t.Fatalf("server never printed its address (stderr:\n%s)", stderr.String())
	return nil
}

func (p *serveProc) get(t *testing.T, path string) string {
	t.Helper()
	resp, err := http.Get(p.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", path, resp.StatusCode, b)
	}
	return string(b)
}

func (p *serveProc) post(t *testing.T, path, body string) string {
	t.Helper()
	resp, err := http.Post(p.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d %s", path, resp.StatusCode, b)
	}
	return string(b)
}

// corpusArgs keeps the e2e corpora small enough for quick learning.
var corpusArgs = []string{"-scale", "small", "-seed", "7", "-links", "150", "-catalog", "500"}

// TestCLIServeCrashRecovery is the end-to-end durability proof: a served
// corpus takes mutation traffic, the process is SIGKILLed mid-life, and
// the restarted process — recovering purely from the store directory —
// answers the same link queries byte-identically.
func TestCLIServeCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	dir := t.TempDir()
	args := append([]string{"-store", dir, "-fsync", "always", "-snapshot-every", "5"}, corpusArgs...)

	p := startServe(t, bin, args...)
	// Mutation traffic: new items, an overwrite, a removal, extra links
	// and a relearn — all of it must survive the kill.
	p.post(t, "/v1/items/upsert", `{"side":"external","items":[
		{"id":"http://provider.example/item/CRASH1","properties":{"http://provider.example/prop#partNumber":["AAA-111-B"]}},
		{"id":"http://provider.example/item/CRASH2","properties":{"http://provider.example/prop#partNumber":["CCC-333-D"]}}]}`)
	p.post(t, "/v1/items/upsert", `{"side":"external","items":[
		{"id":"http://provider.example/item/CRASH1","properties":{"http://provider.example/prop#partNumber":["AAA-222-C"]}}]}`)
	p.post(t, "/v1/items/remove", `{"side":"external","ids":["http://provider.example/item/D000001"]}`)
	p.post(t, "/v1/learn", `{"links":[{"external":"http://provider.example/item/CRASH1","local":"http://catalog.example/item/C000003"}]}`)

	const linkQuery = `{"items":["http://provider.example/item/CRASH1","http://provider.example/item/CRASH2","http://provider.example/item/D000000"],"top_k":3}`
	before := p.post(t, "/v1/link", linkQuery)
	rulesBefore := p.get(t, "/v1/rules")

	// SIGKILL: no drain, no flush — only what the WAL already holds.
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = p.cmd.Process.Wait()

	p2 := startServe(t, bin, args...)
	if !strings.Contains(p2.stderr.String(), "recovering from") {
		t.Fatalf("restart did not recover from the store:\n%s", p2.stderr.String())
	}
	after := p2.post(t, "/v1/link", linkQuery)
	if after != before {
		t.Errorf("link answers changed across crash recovery:\nbefore: %s\nafter:  %s", before, after)
	}
	if rulesAfter := p2.get(t, "/v1/rules"); rulesAfter != rulesBefore {
		t.Errorf("rules changed across crash recovery:\nbefore: %s\nafter:  %s", rulesBefore, rulesAfter)
	}
	status := p2.get(t, "/v1/status")
	if !strings.Contains(status, `"durability"`) {
		t.Errorf("status lacks durability stats: %s", status)
	}
}

// TestCLIServeOverloadProtection exercises the resilience flags end to
// end: strict API-key auth (401s), per-client rate limiting (429 +
// Retry-After once the burst is spent), the unauthenticated liveness
// probe, and the /v1/status resilience block echoing the limits.
func TestCLIServeOverloadProtection(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	keysFile := filepath.Join(t.TempDir(), "keys")
	if err := os.WriteFile(keysFile, []byte("# service keys\n\nsecret-key-1\nsecret-key-2\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	args := append([]string{
		"-api-keys", keysFile, "-strict-auth",
		"-rate", "0.5", "-burst", "2",
		"-max-inflight", "8", "-request-timeout", "30s",
	}, corpusArgs...)
	p := startServe(t, bin, args...)

	keyed := func(key string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, p.base+"/v1/status", nil)
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}

	if resp, body := keyed(""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated status: %d %s, want 401", resp.StatusCode, body)
	} else if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 is missing the WWW-Authenticate header")
	}
	if resp, body := keyed("not-a-key"); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key: %d %s, want 401", resp.StatusCode, body)
	}
	// The liveness probe bypasses authentication.
	if s := p.get(t, "/healthz"); !strings.Contains(s, "true") {
		t.Errorf("healthz without key: %s", s)
	}

	resp, body := keyed("secret-key-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("keyed status: %d %s, want 200", resp.StatusCode, body)
	}
	for _, want := range []string{`"max_in_flight":8`, `"strict_auth":true`, `"api_keys":2`, `"request_timeout_ms":30000`, `"burst":2`} {
		if !strings.Contains(body, want) {
			t.Errorf("status resilience block lacks %s: %s", want, body)
		}
	}
	// Burst 2 at 0.5/s: the first two requests above the refill rate pass,
	// the next is shed with a Retry-After hint.
	if resp, _ := keyed("secret-key-1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("second keyed request: %d, want 200", resp.StatusCode)
	}
	resp, body = keyed("secret-key-1")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third keyed request: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 is missing the Retry-After header")
	}
	if !strings.Contains(body, "rate_limited") {
		t.Errorf("429 body lacks the machine-readable reason: %s", body)
	}
	// The second key has its own untouched bucket.
	if resp, _ := keyed("secret-key-2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("other client while first is limited: %d, want 200", resp.StatusCode)
	}
}

// TestCLIServeGracefulShutdown sends SIGTERM and expects a clean drain:
// exit code 0, the shutdown message, and — because the close path syncs
// the WAL — the pre-shutdown mutations recovered on restart even with
// -fsync never.
func TestCLIServeGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	bin := binary(t)
	dir := t.TempDir()
	args := append([]string{"-store", dir, "-fsync", "never"}, corpusArgs...)

	p := startServe(t, bin, args...)
	p.post(t, "/v1/items/upsert", `{"side":"external","items":[
		{"id":"http://provider.example/item/GRACE1","properties":{"http://provider.example/prop#partNumber":["GGG-777-Z"]}}]}`)
	const linkQuery = `{"items":["http://provider.example/item/GRACE1"],"top_k":2}`
	before := p.post(t, "/v1/link", linkQuery)

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited non-zero after SIGTERM: %v\n%s", err, p.stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not exit within 30s of SIGTERM\n%s", p.stderr.String())
	}
	if !strings.Contains(p.stderr.String(), "shut down cleanly") {
		t.Errorf("no clean-shutdown message:\n%s", p.stderr.String())
	}

	p2 := startServe(t, bin, args...)
	after := p2.post(t, "/v1/link", linkQuery)
	if after != before {
		t.Errorf("mutation lost across graceful shutdown:\nbefore: %s\nafter:  %s", before, after)
	}
}
