package datalink

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/linkage"
	"repro/internal/similarity"
)

// Measure scores string similarity in [0, 1].
type Measure = similarity.Measure

// Comparator compares one external property against one local property
// under a similarity measure, with a weight.
type Comparator = linkage.Comparator

// LinkerConfig configures the in-space matcher.
type LinkerConfig = linkage.Config

// Match is a declared same-as link with its score.
type Match = linkage.Match

// LinkResult is the confusion summary of declared links vs ground truth.
type LinkResult = linkage.Result

// Similarity measure constructors commonly used by linkers.
var (
	// Levenshtein is normalized edit-distance similarity.
	Levenshtein Measure = similarity.Levenshtein{}
	// JaroWinkler is prefix-boosted Jaro similarity.
	JaroWinkler Measure = similarity.JaroWinkler{}
	// Jaccard is token-set Jaccard similarity.
	Jaccard Measure = similarity.Jaccard{}
	// MongeElkan is the token-level hybrid with Jaro-Winkler inside.
	MongeElkan Measure = similarity.MongeElkan{}
)

// EvaluateLinks scores declared matches against truth links.
func EvaluateLinks(found []Match, truth []Link) LinkResult {
	return linkage.Evaluate(found, truth)
}

// Pipeline wires the full flow of the paper: learn rules from TS, then
// for each new external item predict classes, build the reduced linking
// space, and (optionally) run a matcher inside it.
type Pipeline struct {
	Model      *Model
	Classifier *Classifier
	Instances  *InstanceIndex

	se *Graph
	sl *Graph
}

// NewPipeline learns a model and prepares the classifier and instance
// index.
func NewPipeline(cfg LearnerConfig, ts TrainingSet, se, sl *Graph, ol *Ontology) (*Pipeline, error) {
	m, err := Learn(cfg, ts, se, sl, ol)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		Model:      m,
		Classifier: NewClassifier(&m.Rules, m.Config.Splitter),
		Instances:  NewInstanceIndex(sl, ol),
		se:         se,
		sl:         sl,
	}, nil
}

// Classify predicts the classes of an external item described in the
// pipeline's external graph.
func (p *Pipeline) Classify(item Term) []Prediction {
	return p.Classifier.Classify(item, p.se)
}

// ReducedSpace computes the item's linking subspaces from its
// predictions.
func (p *Pipeline) ReducedSpace(item Term) SpaceReport {
	return Space(item, p.Classify(item), p.Instances)
}

// LinkWithin runs the matcher over each item's reduced space and returns
// the best match per item at or above the configured threshold.
func (p *Pipeline) LinkWithin(items []Term, cfg LinkerConfig) ([]Match, error) {
	eng, err := linkage.New(cfg, p.se, p.sl)
	if err != nil {
		return nil, fmt.Errorf("datalink: building linker: %w", err)
	}
	cands := map[Term][]Term{}
	for _, item := range items {
		sr := p.ReducedSpace(item)
		pairs := core.CandidatePairs(sr, p.Instances)
		for _, pr := range pairs {
			cands[item] = append(cands[item], pr[1])
		}
	}
	return eng.LinkBest(cands), nil
}

// Generalize applies the subsumption extension to the pipeline's model
// and returns a new rule set (the pipeline itself is unchanged).
func (p *Pipeline) Generalize(ol *Ontology, opts GeneralizeOptions) RuleSet {
	return p.Model.Generalize(ol, opts)
}
