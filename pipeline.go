package datalink

import (
	"context"
	"fmt"
	"reflect"
	"sync"

	"repro/internal/core"
	"repro/internal/linkage"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/similarity"
)

// Measure scores string similarity in [0, 1].
type Measure = similarity.Measure

// Comparator compares one external property against one local property
// under a similarity measure, with a weight.
type Comparator = linkage.Comparator

// LinkerConfig configures the in-space matcher.
type LinkerConfig = linkage.Config

// Match is a declared same-as link with its score.
type Match = linkage.Match

// Side selects the external or local source of an item, for incremental
// index maintenance.
type Side = linkage.Side

// Side values.
const (
	// ExternalSide addresses items of the external graph (SE).
	ExternalSide = linkage.ExternalSide
	// LocalSide addresses items of the local catalog graph (SL).
	LocalSide = linkage.LocalSide
)

// PairSource streams candidate pairs into a matcher without
// materializing them.
type PairSource = linkage.PairSource

// CandidateGroup is one external item's streamable candidate list.
type CandidateGroup = linkage.CandidateGroup

// GroupSource streams per-item candidate groups into a matcher.
type GroupSource = linkage.GroupSource

// LinkResult is the confusion summary of declared links vs ground truth.
type LinkResult = linkage.Result

// Similarity measure constructors commonly used by linkers.
var (
	// Levenshtein is normalized edit-distance similarity.
	Levenshtein Measure = similarity.Levenshtein{}
	// JaroWinkler is prefix-boosted Jaro similarity.
	JaroWinkler Measure = similarity.JaroWinkler{}
	// Jaccard is token-set Jaccard similarity.
	Jaccard Measure = similarity.Jaccard{}
	// MongeElkan is the token-level hybrid with Jaro-Winkler inside.
	MongeElkan Measure = similarity.MongeElkan{}
)

// EvaluateLinks scores declared matches against truth links.
func EvaluateLinks(found []Match, truth []Link) LinkResult {
	return linkage.Evaluate(found, truth)
}

// ErrLinkerConfig marks an invalid LinkerConfig; every config validation
// failure from the linking engine wraps it, letting callers classify
// configuration mistakes (a client error) apart from internal failures.
var ErrLinkerConfig = linkage.ErrConfig

// Pipeline wires the full flow of the paper: learn rules from TS, then
// for each new external item predict classes, build the reduced linking
// space, and (optionally) run a matcher inside it.
//
// Concurrency: the Pipeline's own query methods (Classify, ReducedSpace,
// LinkWithin, LinkTopK) read the live graphs and instance index, so they
// must be serialized against the mutation methods (Upsert, RemoveItems,
// RefreshInstances) by the caller. For lock-free queries under a live
// write path, take a Snapshot: the returned QueryView reads frozen
// copy-on-write state and may run concurrently with any later mutation —
// internal/service publishes one per mutation via an atomic pointer.
// Only the linkage engine underneath is safe for unsynchronized
// query-under-update on its own.
type Pipeline struct {
	Model      *Model
	Classifier *Classifier
	Instances  *InstanceIndex

	se *Graph
	sl *Graph
	ol *Ontology

	// linker caches the value-indexed engine of the last LinkWithin
	// config: repeated calls (incremental per-item linking) reuse the
	// index instead of re-snapshotting both graphs. The engine itself
	// tracks the graph versions its index reflects; Upsert keeps it
	// current item-by-item, so a live graph never forces a rebuild.
	linkerMu  sync.Mutex
	linker    *linkage.Engine
	linkerCfg LinkerConfig
}

// NewPipeline learns a model and prepares the classifier and instance
// index.
func NewPipeline(cfg LearnerConfig, ts TrainingSet, se, sl *Graph, ol *Ontology) (*Pipeline, error) {
	m, err := Learn(cfg, ts, se, sl, ol)
	if err != nil {
		return nil, err
	}
	return NewPipelineWithModel(m, se, sl, ol), nil
}

// NewPipelineWithModel builds a pipeline around an already-learned
// model over the given live graphs. This is how durable recovery keeps
// model and corpus independent: the model is recomputed from the exact
// learn-time state a snapshot preserved, while the pipeline serves the
// (possibly later-mutated) current graphs — matching a live service
// whose items changed after its last learn.
func NewPipelineWithModel(m *Model, se, sl *Graph, ol *Ontology) *Pipeline {
	return &Pipeline{
		Model:      m,
		Classifier: NewClassifier(&m.Rules, m.Config.Splitter),
		Instances:  NewInstanceIndex(sl, ol),
		se:         se,
		sl:         sl,
		ol:         ol,
	}
}

// External returns the pipeline's live external graph. Mutate it only
// under the same serialization as the pipeline's mutation methods, and
// tell the pipeline via Upsert/RemoveItems afterwards.
func (p *Pipeline) External() *Graph { return p.se }

// Local returns the pipeline's live local catalog graph, under the same
// contract as External.
func (p *Pipeline) Local() *Graph { return p.sl }

// Classify predicts the classes of an external item described in the
// pipeline's external graph.
func (p *Pipeline) Classify(item Term) []Prediction {
	return p.Classifier.Classify(item, p.se)
}

// ReducedSpace computes the item's linking subspaces from its
// predictions.
func (p *Pipeline) ReducedSpace(item Term) SpaceReport {
	return Space(item, p.Classify(item), p.Instances)
}

// LinkWithin runs the matcher over each item's reduced space and returns
// the best match per item at or above the configured threshold. The
// engine value-indexes both graphs up front and scores candidates across
// cfg.Workers goroutines (0 = all cores); results are deterministic for
// every worker count.
func (p *Pipeline) LinkWithin(items []Term, cfg LinkerConfig) ([]Match, error) {
	return p.LinkWithinCtx(context.Background(), items, cfg)
}

// LinkWithinCtx is LinkWithin with cooperative cancellation: a cancelled
// ctx stops in-flight scoring (within one work chunk per worker) and
// returns ctx.Err() — the path a dropped service request takes.
func (p *Pipeline) LinkWithinCtx(ctx context.Context, items []Term, cfg LinkerConfig) ([]Match, error) {
	eng, err := p.linkerFor(cfg)
	if err != nil {
		return nil, fmt.Errorf("datalink: building linker: %w", err)
	}
	cands := map[Term][]Term{}
	for _, item := range items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cands[item] = p.candidatesOf(item)
	}
	return eng.LinkBestCtx(ctx, cands)
}

// LinkTopK returns, for every item, its k best-scoring candidates at or
// above cfg.Threshold inside the item's reduced linking space (k <= 0
// means all). The per-item slices follow the engine's match order.
// Candidate expansion (classification) runs serially; the scoring stage
// fans out across cfg.Workers goroutines.
func (p *Pipeline) LinkTopK(ctx context.Context, items []Term, cfg LinkerConfig, k int) (map[Term][]Match, error) {
	sp := obs.StartSpan(ctx, "engine")
	eng, err := p.linkerFor(cfg)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("datalink: building linker: %w", err)
	}
	sp = obs.StartSpan(ctx, "blocking")
	cands, err := expandCandidates(ctx, p.Classifier, p.se, p.Instances, items)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = obs.StartSpan(ctx, "scoring")
	defer sp.End()
	return topKOver(ctx, eng, cfg.Workers, cands, k)
}

// itemCands pairs an external item with its expanded local candidates.
type itemCands struct {
	item Term
	locs []Term
}

// expandCandidates computes every item's reduced-space candidates on the
// calling goroutine: a live classifier/instance index is not safe for
// concurrent first-touch, and a frozen one doesn't need the parallelism.
func expandCandidates(ctx context.Context, cls *Classifier, se *Graph, ix *InstanceIndex, items []Term) ([]itemCands, error) {
	cands := make([]itemCands, 0, len(items))
	for _, item := range items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cands = append(cands, itemCands{item: item, locs: candidatesIn(cls, se, ix, item)})
	}
	return cands, nil
}

// topKOver fans the per-item top-k searches out across workers.
func topKOver(ctx context.Context, eng *linkage.Engine, workers int, cands []itemCands, k int) (map[Term][]Match, error) {
	type itemMatches struct {
		item Term
		ms   []Match
	}
	scored, err := par.MapChunks(ctx, par.Workers(workers), 0, cands, func(c itemCands) (itemMatches, bool) {
		return itemMatches{item: c.item, ms: eng.TopK(c.item, c.locs, k)}, true
	})
	if err != nil {
		return nil, err
	}
	out := make(map[Term][]Match, len(scored))
	for _, im := range scored {
		out[im.item] = im.ms
	}
	return out, nil
}

// candidatesOf expands one item's reduced space into its local
// candidates.
func (p *Pipeline) candidatesOf(item Term) []Term {
	return candidatesIn(p.Classifier, p.se, p.Instances, item)
}

// candidatesIn is the shared candidate expansion: classify item against
// se, build its reduced space over ix, and return the local candidates.
func candidatesIn(cls *Classifier, se *Graph, ix *InstanceIndex, item Term) []Term {
	sr := core.Space(item, cls.Classify(item, se), ix)
	pairs := core.CandidatePairs(sr, ix)
	locs := make([]Term, 0, len(pairs))
	for _, pr := range pairs {
		locs = append(locs, pr[1])
	}
	return locs
}

// Upsert re-indexes the given items in the cached linker after the
// caller mutated the pipeline's graphs, so the next LinkWithin reuses
// the value index instead of rebuilding it. Local-side changes also
// update the instance index incrementally, item by item (a class's
// instance set may have changed) — no full pass over the type triples.
// A no-op for sides the cached linker does not exist for yet — the first
// LinkWithin then builds a current index anyway.
//
// The contract is all-or-nothing per mutation span: one Upsert call must
// list every item whose triples changed since the last Upsert, because
// the linker marks itself current with the graph's version counter —
// items mutated but not listed would stay stale without triggering a
// rebuild, silently.
func (p *Pipeline) Upsert(side Side, items ...Term) {
	p.linkerMu.Lock()
	if p.linker != nil {
		p.linker.Upsert(side, items...)
	}
	p.linkerMu.Unlock()
	if side == LocalSide {
		for _, item := range items {
			p.Instances.UpsertInstance(item, p.sl.Objects(item, RDFType))
		}
	}
}

// RemoveItems drops the items from the cached linker's index on the
// given side (and removes local-side items from the instance index,
// per item). Unlike Upsert it never re-reads the graphs, so it also
// soft-deletes items whose triples are still present.
func (p *Pipeline) RemoveItems(side Side, items ...Term) {
	p.linkerMu.Lock()
	if p.linker != nil {
		p.linker.Remove(side, items...)
	}
	p.linkerMu.Unlock()
	if side == LocalSide {
		for _, item := range items {
			p.Instances.RemoveInstance(item)
		}
	}
}

// Patch is one batched index mutation: re-index (or with Remove, drop)
// Items on Side. See ApplyPatches.
type Patch = linkage.IndexPatch

// ApplyPatches applies an ordered mixed upsert/remove batch to the
// cached linker under ONE lock acquisition (the single-op path takes it
// per call), then patches the instance index for every local-side
// entry. This is the pipeline half of the service's batched commit: N
// items cost one writer-lock round trip and — because the caller
// publishes once after — one snapshot publish.
func (p *Pipeline) ApplyPatches(patches []Patch) {
	p.linkerMu.Lock()
	if p.linker != nil {
		p.linker.ApplyPatches(patches)
	}
	p.linkerMu.Unlock()
	for _, pt := range patches {
		if pt.Side != LocalSide {
			continue
		}
		for _, item := range pt.Items {
			if pt.Remove {
				p.Instances.RemoveInstance(item)
			} else {
				p.Instances.UpsertInstance(item, p.sl.Objects(item, RDFType))
			}
		}
	}
}

// UpsertBatch re-indexes items on side as one patch — Upsert's
// slice-native form for bulk loads.
func (p *Pipeline) UpsertBatch(side Side, items []Term) {
	p.ApplyPatches([]Patch{{Side: side, Items: items}})
}

// RemoveBatch drops items from the index on side as one patch —
// RemoveItems' slice-native form for bulk loads.
func (p *Pipeline) RemoveBatch(side Side, items []Term) {
	p.ApplyPatches([]Patch{{Side: side, Remove: true, Items: items}})
}

// RefreshInstances rebuilds the instance index from the current local
// graph with a full pass over the type triples — the heavyweight
// fallback when the caller cannot enumerate which items changed
// (Upsert/RemoveItems maintain the index incrementally and are preferred
// on known mutations).
func (p *Pipeline) RefreshInstances() {
	p.Instances = NewInstanceIndex(p.sl, p.ol)
}

// EnsureLinker builds (or reuses) the cached engine for cfg, reading the
// live graphs. It exists for writers that publish QueryViews: warming
// the cache on the write path guarantees the view's queries never touch
// live graphs, because CachedLinker hits. Must be serialized with
// mutations like every other Pipeline mutator.
func (p *Pipeline) EnsureLinker(cfg LinkerConfig) error {
	_, err := p.linkerFor(cfg)
	return err
}

// cachedEngine returns the cached engine when cfg's comparators match
// the cache (adapting threshold/workers via WithOptions, which shares
// the index), or nil on any mismatch. It never reads the graphs and
// never rebuilds, so it is safe on a lock-free query path; freshness is
// the caller's concern (QueryView checks the engine's versions against
// its snapshots).
func (p *Pipeline) cachedEngine(cfg LinkerConfig) *linkage.Engine {
	p.linkerMu.Lock()
	defer p.linkerMu.Unlock()
	if p.linker == nil || !reflect.DeepEqual(cfg.Comparators, p.linkerCfg.Comparators) {
		return nil
	}
	if cfg.Threshold == p.linkerCfg.Threshold && cfg.Workers == p.linkerCfg.Workers {
		return p.linker
	}
	eng, err := p.linker.WithOptions(cfg.Threshold, cfg.Workers)
	if err != nil {
		return nil
	}
	return eng
}

// QueryView is an immutable point-in-time view of a pipeline for
// lock-free queries: classification and candidate expansion read frozen
// copy-on-write snapshots of the graphs and the instance index, so those
// reads never tear while the live pipeline keeps mutating. Scoring
// prefers the pipeline's shared live engine (internally synchronized and
// kept fresh by Upsert/RemoveItems): a mutation landing mid-query may be
// reflected in scores computed after it, but each pair's score is atomic
// under the engine's lock and never mixes an item's old and new values.
// When the requested comparators don't match the cached engine — or the
// cache lags the snapshot — the view builds a request-scoped engine from
// its own frozen graphs instead, trading one index build for fully
// snapshot-pinned scoring.
type QueryView struct {
	p  *Pipeline
	se *Graph
	sl *Graph
	ix *InstanceIndex
}

// Snapshot captures a QueryView of the pipeline's current state in O(1)
// (graph and instance-index snapshots are copy-on-write). Like every
// mutator it must be called serialized with mutations; the returned view
// itself is safe for unsynchronized concurrent use from then on.
func (p *Pipeline) Snapshot() *QueryView {
	return &QueryView{
		p:  p,
		se: p.se.Snapshot(),
		sl: p.sl.Snapshot(),
		ix: p.Instances.Snapshot(),
	}
}

// Model returns the learned model backing this view (immutable).
func (v *QueryView) Model() *Model { return v.p.Model }

// External returns the view's frozen external graph snapshot.
func (v *QueryView) External() *Graph { return v.se }

// Local returns the view's frozen local graph snapshot.
func (v *QueryView) Local() *Graph { return v.sl }

// Instances returns the view's frozen instance index.
func (v *QueryView) Instances() *InstanceIndex { return v.ix }

// Classify predicts the classes of an external item as described at
// snapshot time.
func (v *QueryView) Classify(item Term) []Prediction {
	return v.p.Classifier.Classify(item, v.se)
}

// ReducedSpace computes the item's linking subspaces from its
// predictions, over the frozen instance index.
func (v *QueryView) ReducedSpace(item Term) SpaceReport {
	return core.Space(item, v.Classify(item), v.ix)
}

// engineFor resolves the scoring engine for cfg: the pipeline's shared
// live engine when the comparators match the cache and its index is at
// least as new as this view's snapshots, else a request-scoped engine
// compiled from the frozen snapshots (never the live graphs, which may
// be mutating concurrently).
func (v *QueryView) engineFor(cfg LinkerConfig) (*linkage.Engine, error) {
	if eng := v.p.cachedEngine(cfg); eng != nil {
		ext, loc := eng.Versions()
		if ext >= v.se.Version() && loc >= v.sl.Version() {
			return eng, nil
		}
	}
	return linkage.New(cfg, v.se, v.sl)
}

// LinkTopK is Pipeline.LinkTopK against the view's frozen state: every
// candidate expansion reads the snapshots, and no lock beyond the
// engine's internal per-batch read lock is held while scoring runs.
// When the context carries an obs.Trace, the engine-resolution,
// blocking and scoring stages are timed into it; without one the spans
// are free.
func (v *QueryView) LinkTopK(ctx context.Context, items []Term, cfg LinkerConfig, k int) (map[Term][]Match, error) {
	sp := obs.StartSpan(ctx, "engine")
	eng, err := v.engineFor(cfg)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("datalink: building linker: %w", err)
	}
	sp = obs.StartSpan(ctx, "blocking")
	cands, err := expandCandidates(ctx, v.p.Classifier, v.se, v.ix, items)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = obs.StartSpan(ctx, "scoring")
	defer sp.End()
	return topKOver(ctx, eng, cfg.Workers, cands, k)
}

// LinkWithinCtx is Pipeline.LinkWithinCtx against the view's frozen
// state.
func (v *QueryView) LinkWithinCtx(ctx context.Context, items []Term, cfg LinkerConfig) ([]Match, error) {
	eng, err := v.engineFor(cfg)
	if err != nil {
		return nil, fmt.Errorf("datalink: building linker: %w", err)
	}
	cands := map[Term][]Term{}
	for _, item := range items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cands[item] = candidatesIn(v.p.Classifier, v.se, v.ix, item)
	}
	return eng.LinkBestCtx(ctx, cands)
}

// linkerFor returns the engine for cfg, reusing the cached value index
// when possible: unchanged config hits the cache outright, and a config
// differing only in threshold or worker count shares the cached index
// via WithOptions. A comparator change forces a rebuild, as does a graph
// mutation the engine was not told about via Upsert/RemoveItems (the
// engine tracks the graph versions its index reflects). Comparators are
// compared with reflect.DeepEqual, which is always false for measures
// carrying function values (similarity.Func closures): those configs
// still work but rebuild the index every call, like the pre-cache engine
// did.
func (p *Pipeline) linkerFor(cfg LinkerConfig) (*linkage.Engine, error) {
	p.linkerMu.Lock()
	defer p.linkerMu.Unlock()
	if p.linker != nil && p.linker.Fresh() && reflect.DeepEqual(cfg.Comparators, p.linkerCfg.Comparators) {
		if cfg.Threshold == p.linkerCfg.Threshold && cfg.Workers == p.linkerCfg.Workers {
			return p.linker, nil
		}
		eng, err := p.linker.WithOptions(cfg.Threshold, cfg.Workers)
		if err != nil {
			return nil, err
		}
		p.linker = eng
		p.storeLinkerCfg(cfg)
		return eng, nil
	}
	eng, err := linkage.New(cfg, p.se, p.sl)
	if err != nil {
		return nil, err
	}
	p.linker = eng
	p.storeLinkerCfg(cfg)
	return eng, nil
}

// storeLinkerCfg records the cached engine's config with the comparator
// slice defensively copied, so a caller mutating its own slice in place
// cannot alias the cache's change detection.
func (p *Pipeline) storeLinkerCfg(cfg LinkerConfig) {
	cfg.Comparators = append([]Comparator(nil), cfg.Comparators...)
	p.linkerCfg = cfg
}

// Generalize applies the subsumption extension to the pipeline's model
// and returns a new rule set (the pipeline itself is unchanged).
func (p *Pipeline) Generalize(ol *Ontology, opts GeneralizeOptions) RuleSet {
	return p.Model.Generalize(ol, opts)
}
