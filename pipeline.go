package datalink

import (
	"fmt"
	"reflect"
	"sync"

	"repro/internal/core"
	"repro/internal/linkage"
	"repro/internal/similarity"
)

// Measure scores string similarity in [0, 1].
type Measure = similarity.Measure

// Comparator compares one external property against one local property
// under a similarity measure, with a weight.
type Comparator = linkage.Comparator

// LinkerConfig configures the in-space matcher.
type LinkerConfig = linkage.Config

// Match is a declared same-as link with its score.
type Match = linkage.Match

// LinkResult is the confusion summary of declared links vs ground truth.
type LinkResult = linkage.Result

// Similarity measure constructors commonly used by linkers.
var (
	// Levenshtein is normalized edit-distance similarity.
	Levenshtein Measure = similarity.Levenshtein{}
	// JaroWinkler is prefix-boosted Jaro similarity.
	JaroWinkler Measure = similarity.JaroWinkler{}
	// Jaccard is token-set Jaccard similarity.
	Jaccard Measure = similarity.Jaccard{}
	// MongeElkan is the token-level hybrid with Jaro-Winkler inside.
	MongeElkan Measure = similarity.MongeElkan{}
)

// EvaluateLinks scores declared matches against truth links.
func EvaluateLinks(found []Match, truth []Link) LinkResult {
	return linkage.Evaluate(found, truth)
}

// Pipeline wires the full flow of the paper: learn rules from TS, then
// for each new external item predict classes, build the reduced linking
// space, and (optionally) run a matcher inside it.
type Pipeline struct {
	Model      *Model
	Classifier *Classifier
	Instances  *InstanceIndex

	se *Graph
	sl *Graph

	// linker caches the value-indexed engine of the last LinkWithin
	// config: repeated calls (incremental per-item linking) reuse the
	// index instead of re-snapshotting both graphs. The cached graph
	// versions invalidate the index when either graph is mutated.
	linkerMu  sync.Mutex
	linker    *linkage.Engine
	linkerCfg LinkerConfig
	linkerVer [2]uint64
}

// NewPipeline learns a model and prepares the classifier and instance
// index.
func NewPipeline(cfg LearnerConfig, ts TrainingSet, se, sl *Graph, ol *Ontology) (*Pipeline, error) {
	m, err := Learn(cfg, ts, se, sl, ol)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		Model:      m,
		Classifier: NewClassifier(&m.Rules, m.Config.Splitter),
		Instances:  NewInstanceIndex(sl, ol),
		se:         se,
		sl:         sl,
	}, nil
}

// Classify predicts the classes of an external item described in the
// pipeline's external graph.
func (p *Pipeline) Classify(item Term) []Prediction {
	return p.Classifier.Classify(item, p.se)
}

// ReducedSpace computes the item's linking subspaces from its
// predictions.
func (p *Pipeline) ReducedSpace(item Term) SpaceReport {
	return Space(item, p.Classify(item), p.Instances)
}

// LinkWithin runs the matcher over each item's reduced space and returns
// the best match per item at or above the configured threshold. The
// engine value-indexes both graphs up front and scores candidates across
// cfg.Workers goroutines (0 = all cores); results are deterministic for
// every worker count.
func (p *Pipeline) LinkWithin(items []Term, cfg LinkerConfig) ([]Match, error) {
	eng, err := p.linkerFor(cfg)
	if err != nil {
		return nil, fmt.Errorf("datalink: building linker: %w", err)
	}
	cands := map[Term][]Term{}
	for _, item := range items {
		sr := p.ReducedSpace(item)
		pairs := core.CandidatePairs(sr, p.Instances)
		for _, pr := range pairs {
			cands[item] = append(cands[item], pr[1])
		}
	}
	return eng.LinkBest(cands), nil
}

// linkerFor returns the engine for cfg, reusing the cached value index
// when possible: unchanged config hits the cache outright, and a config
// differing only in threshold or worker count shares the cached index
// via WithOptions. A comparator change or a mutation of either graph
// since the index was built forces a rebuild. Comparators are compared
// with reflect.DeepEqual, which is always false for measures carrying
// function values (similarity.Func closures): those configs still work
// but rebuild the index every call, like the pre-cache engine did.
func (p *Pipeline) linkerFor(cfg LinkerConfig) (*linkage.Engine, error) {
	p.linkerMu.Lock()
	defer p.linkerMu.Unlock()
	fresh := p.linkerVer == [2]uint64{p.se.Version(), p.sl.Version()}
	if p.linker != nil && fresh && reflect.DeepEqual(cfg.Comparators, p.linkerCfg.Comparators) {
		if cfg.Threshold == p.linkerCfg.Threshold && cfg.Workers == p.linkerCfg.Workers {
			return p.linker, nil
		}
		eng, err := p.linker.WithOptions(cfg.Threshold, cfg.Workers)
		if err != nil {
			return nil, err
		}
		p.linker = eng
		p.storeLinkerCfg(cfg)
		return eng, nil
	}
	eng, err := linkage.New(cfg, p.se, p.sl)
	if err != nil {
		return nil, err
	}
	p.linker = eng
	p.storeLinkerCfg(cfg)
	p.linkerVer = [2]uint64{p.se.Version(), p.sl.Version()}
	return eng, nil
}

// storeLinkerCfg records the cached engine's config with the comparator
// slice defensively copied, so a caller mutating its own slice in place
// cannot alias the cache's change detection.
func (p *Pipeline) storeLinkerCfg(cfg LinkerConfig) {
	cfg.Comparators = append([]Comparator(nil), cfg.Comparators...)
	p.linkerCfg = cfg
}

// Generalize applies the subsumption extension to the pipeline's model
// and returns a new rule set (the pipeline itself is unchanged).
func (p *Pipeline) Generalize(ol *Ontology, opts GeneralizeOptions) RuleSet {
	return p.Model.Generalize(ol, opts)
}
