package datalink

import (
	"context"
	"fmt"
	"reflect"
	"sync"

	"repro/internal/core"
	"repro/internal/linkage"
	"repro/internal/par"
	"repro/internal/similarity"
)

// Measure scores string similarity in [0, 1].
type Measure = similarity.Measure

// Comparator compares one external property against one local property
// under a similarity measure, with a weight.
type Comparator = linkage.Comparator

// LinkerConfig configures the in-space matcher.
type LinkerConfig = linkage.Config

// Match is a declared same-as link with its score.
type Match = linkage.Match

// Side selects the external or local source of an item, for incremental
// index maintenance.
type Side = linkage.Side

// Side values.
const (
	// ExternalSide addresses items of the external graph (SE).
	ExternalSide = linkage.ExternalSide
	// LocalSide addresses items of the local catalog graph (SL).
	LocalSide = linkage.LocalSide
)

// PairSource streams candidate pairs into a matcher without
// materializing them.
type PairSource = linkage.PairSource

// CandidateGroup is one external item's streamable candidate list.
type CandidateGroup = linkage.CandidateGroup

// GroupSource streams per-item candidate groups into a matcher.
type GroupSource = linkage.GroupSource

// LinkResult is the confusion summary of declared links vs ground truth.
type LinkResult = linkage.Result

// Similarity measure constructors commonly used by linkers.
var (
	// Levenshtein is normalized edit-distance similarity.
	Levenshtein Measure = similarity.Levenshtein{}
	// JaroWinkler is prefix-boosted Jaro similarity.
	JaroWinkler Measure = similarity.JaroWinkler{}
	// Jaccard is token-set Jaccard similarity.
	Jaccard Measure = similarity.Jaccard{}
	// MongeElkan is the token-level hybrid with Jaro-Winkler inside.
	MongeElkan Measure = similarity.MongeElkan{}
)

// EvaluateLinks scores declared matches against truth links.
func EvaluateLinks(found []Match, truth []Link) LinkResult {
	return linkage.Evaluate(found, truth)
}

// Pipeline wires the full flow of the paper: learn rules from TS, then
// for each new external item predict classes, build the reduced linking
// space, and (optionally) run a matcher inside it.
//
// Concurrency: queries (Classify, ReducedSpace, LinkWithin, LinkTopK)
// may run concurrently with each other only after the instance index is
// warmed (InstanceIndex memoizes lazily; see InstanceIndex.Freeze). The
// mutation methods (Upsert, RemoveItems, RefreshInstances) must be
// serialized against queries by the caller — internal/service does this
// with an RWMutex. Only the linkage engine underneath is safe for
// unsynchronized query-under-update.
type Pipeline struct {
	Model      *Model
	Classifier *Classifier
	Instances  *InstanceIndex

	se *Graph
	sl *Graph
	ol *Ontology

	// linker caches the value-indexed engine of the last LinkWithin
	// config: repeated calls (incremental per-item linking) reuse the
	// index instead of re-snapshotting both graphs. The engine itself
	// tracks the graph versions its index reflects; Upsert keeps it
	// current item-by-item, so a live graph never forces a rebuild.
	linkerMu  sync.Mutex
	linker    *linkage.Engine
	linkerCfg LinkerConfig
}

// NewPipeline learns a model and prepares the classifier and instance
// index.
func NewPipeline(cfg LearnerConfig, ts TrainingSet, se, sl *Graph, ol *Ontology) (*Pipeline, error) {
	m, err := Learn(cfg, ts, se, sl, ol)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		Model:      m,
		Classifier: NewClassifier(&m.Rules, m.Config.Splitter),
		Instances:  NewInstanceIndex(sl, ol),
		se:         se,
		sl:         sl,
		ol:         ol,
	}, nil
}

// Classify predicts the classes of an external item described in the
// pipeline's external graph.
func (p *Pipeline) Classify(item Term) []Prediction {
	return p.Classifier.Classify(item, p.se)
}

// ReducedSpace computes the item's linking subspaces from its
// predictions.
func (p *Pipeline) ReducedSpace(item Term) SpaceReport {
	return Space(item, p.Classify(item), p.Instances)
}

// LinkWithin runs the matcher over each item's reduced space and returns
// the best match per item at or above the configured threshold. The
// engine value-indexes both graphs up front and scores candidates across
// cfg.Workers goroutines (0 = all cores); results are deterministic for
// every worker count.
func (p *Pipeline) LinkWithin(items []Term, cfg LinkerConfig) ([]Match, error) {
	return p.LinkWithinCtx(context.Background(), items, cfg)
}

// LinkWithinCtx is LinkWithin with cooperative cancellation: a cancelled
// ctx stops in-flight scoring (within one work chunk per worker) and
// returns ctx.Err() — the path a dropped service request takes.
func (p *Pipeline) LinkWithinCtx(ctx context.Context, items []Term, cfg LinkerConfig) ([]Match, error) {
	eng, err := p.linkerFor(cfg)
	if err != nil {
		return nil, fmt.Errorf("datalink: building linker: %w", err)
	}
	cands := map[Term][]Term{}
	for _, item := range items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cands[item] = p.candidatesOf(item)
	}
	return eng.LinkBestCtx(ctx, cands)
}

// LinkTopK returns, for every item, its k best-scoring candidates at or
// above cfg.Threshold inside the item's reduced linking space (k <= 0
// means all). The per-item slices follow the engine's match order.
// Candidate expansion (classification) runs serially; the scoring stage
// fans out across cfg.Workers goroutines.
func (p *Pipeline) LinkTopK(ctx context.Context, items []Term, cfg LinkerConfig, k int) (map[Term][]Match, error) {
	eng, err := p.linkerFor(cfg)
	if err != nil {
		return nil, fmt.Errorf("datalink: building linker: %w", err)
	}
	// The classifier and instance index are not safe for concurrent
	// first-touch, so the reduced spaces are expanded on this goroutine.
	type itemCands struct {
		item Term
		locs []Term
	}
	cands := make([]itemCands, 0, len(items))
	for _, item := range items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cands = append(cands, itemCands{item: item, locs: p.candidatesOf(item)})
	}
	type itemMatches struct {
		item Term
		ms   []Match
	}
	scored, err := par.MapChunks(ctx, par.Workers(cfg.Workers), 0, cands, func(c itemCands) (itemMatches, bool) {
		return itemMatches{item: c.item, ms: eng.TopK(c.item, c.locs, k)}, true
	})
	if err != nil {
		return nil, err
	}
	out := make(map[Term][]Match, len(scored))
	for _, im := range scored {
		out[im.item] = im.ms
	}
	return out, nil
}

// candidatesOf expands one item's reduced space into its local
// candidates.
func (p *Pipeline) candidatesOf(item Term) []Term {
	sr := p.ReducedSpace(item)
	pairs := core.CandidatePairs(sr, p.Instances)
	locs := make([]Term, 0, len(pairs))
	for _, pr := range pairs {
		locs = append(locs, pr[1])
	}
	return locs
}

// Upsert re-indexes the given items in the cached linker after the
// caller mutated the pipeline's graphs, so the next LinkWithin reuses
// the value index instead of rebuilding it. Local-side changes also
// refresh the instance index (a class's instance set may have changed).
// A no-op for sides the cached linker does not exist for yet — the first
// LinkWithin then builds a current index anyway.
//
// The contract is all-or-nothing per mutation span: one Upsert call must
// list every item whose triples changed since the last Upsert, because
// the linker marks itself current with the graph's version counter —
// items mutated but not listed would stay stale without triggering a
// rebuild, silently.
func (p *Pipeline) Upsert(side Side, items ...Term) {
	p.linkerMu.Lock()
	if p.linker != nil {
		p.linker.Upsert(side, items...)
	}
	p.linkerMu.Unlock()
	if side == LocalSide {
		p.RefreshInstances()
	}
}

// RemoveItems drops the items from the cached linker's index on the
// given side (and refreshes the instance index for local-side removals).
// Unlike Upsert it never re-reads the graphs, so it also soft-deletes
// items whose triples are still present.
func (p *Pipeline) RemoveItems(side Side, items ...Term) {
	p.linkerMu.Lock()
	if p.linker != nil {
		p.linker.Remove(side, items...)
	}
	p.linkerMu.Unlock()
	if side == LocalSide {
		p.RefreshInstances()
	}
}

// RefreshInstances rebuilds the instance index from the current local
// graph — required after rdf:type facts change. Cheap relative to the
// value index (one pass over the type triples, no tokenization).
func (p *Pipeline) RefreshInstances() {
	p.Instances = NewInstanceIndex(p.sl, p.ol)
}

// linkerFor returns the engine for cfg, reusing the cached value index
// when possible: unchanged config hits the cache outright, and a config
// differing only in threshold or worker count shares the cached index
// via WithOptions. A comparator change forces a rebuild, as does a graph
// mutation the engine was not told about via Upsert/RemoveItems (the
// engine tracks the graph versions its index reflects). Comparators are
// compared with reflect.DeepEqual, which is always false for measures
// carrying function values (similarity.Func closures): those configs
// still work but rebuild the index every call, like the pre-cache engine
// did.
func (p *Pipeline) linkerFor(cfg LinkerConfig) (*linkage.Engine, error) {
	p.linkerMu.Lock()
	defer p.linkerMu.Unlock()
	if p.linker != nil && p.linker.Fresh() && reflect.DeepEqual(cfg.Comparators, p.linkerCfg.Comparators) {
		if cfg.Threshold == p.linkerCfg.Threshold && cfg.Workers == p.linkerCfg.Workers {
			return p.linker, nil
		}
		eng, err := p.linker.WithOptions(cfg.Threshold, cfg.Workers)
		if err != nil {
			return nil, err
		}
		p.linker = eng
		p.storeLinkerCfg(cfg)
		return eng, nil
	}
	eng, err := linkage.New(cfg, p.se, p.sl)
	if err != nil {
		return nil, err
	}
	p.linker = eng
	p.storeLinkerCfg(cfg)
	return eng, nil
}

// storeLinkerCfg records the cached engine's config with the comparator
// slice defensively copied, so a caller mutating its own slice in place
// cannot alias the cache's change detection.
func (p *Pipeline) storeLinkerCfg(cfg LinkerConfig) {
	cfg.Comparators = append([]Comparator(nil), cfg.Comparators...)
	p.linkerCfg = cfg
}

// Generalize applies the subsumption extension to the pipeline's model
// and returns a new rule set (the pipeline itself is unchanged).
func (p *Pipeline) Generalize(ol *Ontology, opts GeneralizeOptions) RuleSet {
	return p.Model.Generalize(ol, opts)
}
