package datalink

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/segment"
)

// Link is one validated same-as link (external item, local item).
type Link = core.Link

// TrainingSet is the expert link set TS the rules are learned from.
type TrainingSet = core.TrainingSet

// Rule is one learned classification rule with its counts; Support,
// Confidence and Lift derive from them.
type Rule = core.Rule

// RuleSet is an ordered rule collection with the paper's ranking
// (confidence desc, then lift desc).
type RuleSet = core.RuleSet

// LearnerConfig parameterizes Algorithm 1; the zero value reproduces the
// paper's defaults (all literal properties, non-alphanumeric separator
// splitting, support threshold 0.002).
type LearnerConfig = core.LearnerConfig

// Model is a learning result: rules, corpus statistics and the retained
// index used by evaluation and generalization.
type Model = core.Model

// LearnStats reports corpus-level counters of a learning run.
type LearnStats = core.LearnStats

// Classifier applies a rule set to external items.
type Classifier = core.Classifier

// Prediction is a predicted class justified by its best rule.
type Prediction = core.Prediction

// InstanceIndex resolves classes to catalog instance sets (including
// subclass instances).
type InstanceIndex = core.InstanceIndex

// Subspace is one rule's linking subspace for one item.
type Subspace = core.Subspace

// SpaceReport aggregates an item's subspaces and its space reduction.
type SpaceReport = core.SpaceReport

// GeneralizeOptions tunes the subsumption-based rule generalization.
type GeneralizeOptions = core.GeneralizeOptions

// Splitter decomposes property values into segments.
type Splitter = segment.Splitter

// SplitterOptions configures normalization shared by splitters.
type SplitterOptions = segment.Options

// Learn runs Algorithm 1: se supplies property facts of external items,
// sl the rdf:type facts of local items, ol the ontology for
// most-specific-class reduction.
func Learn(cfg LearnerConfig, ts TrainingSet, se, sl *Graph, ol *Ontology) (*Model, error) {
	return core.Learn(cfg, ts, se, sl, ol)
}

// LearnCtx is Learn with cancellation and parallelism: the learning
// passes fan out over cfg.Workers goroutines (0 = GOMAXPROCS) and stop
// promptly when ctx is cancelled, returning ctx's error and no model.
// The learned model is byte-identical at every worker count.
func LearnCtx(ctx context.Context, cfg LearnerConfig, ts TrainingSet, se, sl *Graph, ol *Ontology) (*Model, error) {
	return core.LearnCtx(ctx, cfg, ts, se, sl, ol)
}

// TrainingSetFromGraph extracts a training set from owl:sameAs triples
// (subject = external, object = local).
func TrainingSetFromGraph(g *Graph) TrainingSet { return core.FromGraph(g) }

// NewClassifier indexes a rule set for classification; the splitter must
// match the one used at learning time (nil = paper default).
func NewClassifier(rs *RuleSet, sp Splitter) *Classifier { return core.NewClassifier(rs, sp) }

// NewInstanceIndex scans the catalog's rdf:type triples.
func NewInstanceIndex(sl *Graph, ol *Ontology) *InstanceIndex {
	return core.NewInstanceIndex(sl, ol)
}

// Space computes the ranked linking subspaces of one item from its
// predictions.
func Space(item Term, preds []Prediction, ix *InstanceIndex) SpaceReport {
	return core.Space(item, preds, ix)
}

// CandidatePairs expands a space report into (external, local) candidate
// pairs for a downstream matcher.
func CandidatePairs(sr SpaceReport, ix *InstanceIndex) [][2]Term {
	return core.CandidatePairs(sr, ix)
}

// ReadRules parses a rule set written by RuleSet.Write.
func ReadRules(r io.Reader) (*RuleSet, error) { return core.ReadRules(r) }

// NewSeparatorSplitter cuts on the given runes, or on every
// non-alphanumeric rune when none are given (the paper's default).
func NewSeparatorSplitter(opts SplitterOptions, seps ...rune) Splitter {
	return segment.NewSeparatorSplitter(opts, seps...)
}

// NewNGramSplitter produces overlapping rune n-grams.
func NewNGramSplitter(n int, pad bool, opts SplitterOptions) Splitter {
	return segment.NewNGramSplitter(n, pad, opts)
}

// AverageLift returns the mean lift of a rule slice.
func AverageLift(rules []Rule) float64 { return core.AverageLift(rules) }

// ExtendModel incrementally incorporates newly validated links into a
// model, producing the same result as relearning on the union; the input
// model is unchanged so callers can hot-swap rule sets.
func ExtendModel(m *Model, newLinks []Link, se, sl *Graph, ol *Ontology) (*Model, error) {
	return m.Extend(newLinks, se, sl, ol)
}

// RuleEvidence is the expert-facing audit of one rule: supporting
// training links and counterexamples.
type RuleEvidence = core.RuleEvidence

// Explanation traces one classification decision: fired rules and the
// ranked predictions.
type Explanation = core.Explanation
