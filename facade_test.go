package datalink

import (
	"strings"
	"testing"
)

// TestFacadeExperimentWrappers drives every experiment wrapper of the
// public facade on one small corpus, checking each renders a table.
func TestFacadeExperimentWrappers(t *testing.T) {
	ds, err := GenerateCorpus(SmallCorpusConfig(19))
	if err != nil {
		t.Fatal(err)
	}
	c, err := BuildCorpus(ds, LearnerConfig{})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("sweep", func(t *testing.T) {
		rows, err := ThresholdSweep(ds, LearnerConfig{}, []float64{0.01, 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if out := SweepTable(rows).String(); !strings.Contains(out, "th") {
			t.Errorf("sweep table: %q", out)
		}
	})
	t.Run("splitters", func(t *testing.T) {
		rows, err := SplitterAblation(ds, LearnerConfig{}, []Splitter{
			NewSeparatorSplitter(SplitterOptions{}),
			NewNGramSplitter(2, true, SplitterOptions{MinLength: 2, Lowercase: true, DropNumeric: true}),
		})
		if err != nil {
			t.Fatal(err)
		}
		out := SplitterAblationTable(rows).String()
		if !strings.Contains(out, "2-grams(padded)+lower+min2+nonum") {
			t.Errorf("splitter names not rendered: %q", out)
		}
	})
	t.Run("ordering", func(t *testing.T) {
		if out := OrderingAblationTable(OrderingAblation(c)).String(); !strings.Contains(out, "paper") {
			t.Errorf("ordering table: %q", out)
		}
	})
	t.Run("generalization", func(t *testing.T) {
		rows := GeneralizationExperiment(c)
		if out := GeneralizationTable(rows).String(); !strings.Contains(out, "base (leaf rules)") {
			t.Errorf("generalization table: %q", out)
		}
	})
	t.Run("reduction", func(t *testing.T) {
		rows := SpaceReduction(c, PaperBands())
		if out := SpaceReductionTable(rows).String(); !strings.Contains(out, "completeness") {
			t.Errorf("reduction table: %q", out)
		}
	})
	t.Run("blocking", func(t *testing.T) {
		rows := CompareBlocking(c, DefaultBlockingMethods(c))
		if out := BlockingTable(rows).String(); !strings.Contains(out, "canopy") {
			t.Errorf("blocking table missing canopy: %q", out)
		}
	})
	t.Run("holdout", func(t *testing.T) {
		s, err := CrossValidate(ds, LearnerConfig{}, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		if out := HoldoutTable(s).String(); !strings.Contains(out, "train (paper protocol)") {
			t.Errorf("holdout table: %q", out)
		}
	})
	t.Run("stats", func(t *testing.T) {
		if out := SectionStatsTable(SectionStats(c)).String(); !strings.Contains(out, "paper") {
			t.Errorf("stats table: %q", out)
		}
	})
}

func TestFacadeKeys(t *testing.T) {
	ds, err := GenerateCorpus(SmallCorpusConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	found := DiscoverKeys(ds.Local, ds.Ontology.Leaves(), KeyConfig{MinDistinctness: 0.9})
	if len(found) == 0 {
		t.Fatal("no keys discovered on the generated catalog")
	}
	sawPN := false
	for _, k := range found {
		if len(k.Properties) == 1 && k.Properties[0] == PartNumberProperty {
			sawPN = true
			bk := KeyBlockingValue(ds.Local, ds.Local.InstancesOf(k.Class)[0], k.Properties)
			if bk == "" {
				t.Error("empty blocking key for a covered instance")
			}
		}
	}
	if !sawPN {
		t.Errorf("partNumber not among discovered keys: %v", found)
	}
}

func TestFacadeRuleInspection(t *testing.T) {
	ts, se, sl, ol, pnProp := buildTinyWorld(t)
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1}, ts, se, sl, ol)
	if err != nil {
		t.Fatal(err)
	}
	var ev RuleEvidence
	for _, r := range m.Rules.Rules {
		if r.Segment == "ohm" {
			ev = m.Evidence(r, 0)
		}
	}
	if len(ev.Supporting) != 4 {
		t.Errorf("ohm evidence = %+v", ev)
	}
	cl := NewClassifier(&m.Rules, nil)
	var exp Explanation = cl.Explain(map[Term][]string{pnProp: {"zz-ohm"}})
	if len(exp.Predictions) != 1 {
		t.Errorf("explanation predictions = %v", exp.Predictions)
	}
	if !strings.Contains(exp.String(), "fired rules") {
		t.Errorf("explanation text = %q", exp.String())
	}
}

func TestFacadeGeneralizeModel(t *testing.T) {
	ts, se, sl, ol, _ := buildTinyWorld(t)
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1}, ts, se, sl, ol)
	if err != nil {
		t.Fatal(err)
	}
	rs := GeneralizeModel(m, ol, GeneralizeOptions{})
	if rs.Len() < m.Rules.Len() {
		t.Errorf("generalized set smaller without ReplaceChildren: %d < %d", rs.Len(), m.Rules.Len())
	}
}

func TestFacadeMeasures(t *testing.T) {
	for _, m := range []Measure{Levenshtein, JaroWinkler, Jaccard, MongeElkan} {
		if got := m.Similarity("same", "same"); got != 1 {
			t.Errorf("%s identity = %v", m.Name(), got)
		}
	}
	res := EvaluateLinks(
		[]Match{{External: NewIRI("http://e"), Local: NewIRI("http://l"), Score: 1}},
		[]Link{{External: NewIRI("http://e"), Local: NewIRI("http://l")}},
	)
	if res.F1() != 1 {
		t.Errorf("F1 = %v", res.F1())
	}
}
