// Quickstart: learn classification rules from a handful of expert links
// and use them to classify a new provider item, all through the public
// API. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	datalink "repro"
)

func main() {
	pn := datalink.NewIRI("http://shop.example/prop/partNumber")

	// The local catalog's ontology: Product > {Resistor, Capacitor}.
	ol := datalink.NewOntology()
	product := datalink.NewIRI("http://shop.example/onto/Product")
	resistor := datalink.NewIRI("http://shop.example/onto/Resistor")
	capacitor := datalink.NewIRI("http://shop.example/onto/Capacitor")
	ol.AddSubClassOf(resistor, product)
	ol.AddSubClassOf(capacitor, product)

	// SL: the catalog (typed instances). SE: provider documents (no
	// schema, just part numbers). TS: expert-validated same-as links.
	se := datalink.NewGraph()
	sl := datalink.NewGraph()
	var ts datalink.TrainingSet
	addLink := func(id, partNumber string, class datalink.Term) {
		ext := datalink.NewIRI("http://provider.example/item/" + id)
		loc := datalink.NewIRI("http://shop.example/catalog/" + id)
		se.Add(datalink.T(ext, pn, datalink.NewLiteral(partNumber)))
		sl.Add(datalink.T(loc, datalink.RDFType, class))
		ts.Links = append(ts.Links, datalink.Link{External: ext, Local: loc})
	}

	// Resistor part numbers carry "ohm"; tantalum capacitors carry "T83"
	// (the paper's own example segments).
	addLink("r1", "CRCW0805-100ohm", resistor)
	addLink("r2", "RN55/220ohm", resistor)
	addLink("r3", "ohm 470 P99", resistor)
	addLink("r4", "MELF.512.ohm", resistor)
	addLink("c1", "T83-104-16V", capacitor)
	addLink("c2", "T83 220uF", capacitor)
	addLink("c3", "K55/T83/330", capacitor)

	// Learn rules (Algorithm 1). The low threshold suits the tiny TS.
	pipeline, err := datalink.NewPipeline(
		datalink.LearnerConfig{SupportThreshold: 0.1},
		ts, se, sl, ol,
	)
	if err != nil {
		log.Fatalf("learning: %v", err)
	}
	fmt.Printf("learned %d rules:\n", pipeline.Model.Rules.Len())
	for _, r := range pipeline.Model.Rules.Rules {
		fmt.Printf("  %s\n", r)
	}

	// A new provider document arrives.
	newItem := datalink.NewIRI("http://provider.example/item/new-1")
	se.Add(datalink.T(newItem, pn, datalink.NewLiteral("ZZ-473-ohm-0805")))

	fmt.Printf("\nclassifying %s\n", newItem.Value)
	for _, p := range pipeline.Classify(newItem) {
		fmt.Printf("  -> %s  (confidence %.2f, lift %.1f, segment %q)\n",
			p.Class.Value, p.Rule.Confidence(), p.Rule.Lift(), p.Rule.Segment)
	}

	// The reduced linking space: the item is only compared against
	// instances of the predicted class instead of the whole catalog.
	sr := pipeline.ReducedSpace(newItem)
	fmt.Printf("\nlinking space: %d of %d catalog items (%.1fx reduction)\n",
		sr.UnionSize, sr.CatalogSize, sr.ReductionFactor())
}
