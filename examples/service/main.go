// Live linking service demo: start the HTTP/JSON service in-process over
// a small generated corpus, then drive it the way a client would — learn
// rules, query links, upsert an item and watch the next query pick it up
// without any index rebuild. Run with:
//
//	go run ./examples/service
//
// The same flow works against `linkrules serve` with curl; see the
// README in this directory for the command-by-command walkthrough.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	datalink "repro"
	"repro/internal/service"
)

func main() {
	// A small synthetic corpus: catalog SL, provider documents SE, the
	// ontology, and 600 expert-validated links.
	ds, err := datalink.GenerateCorpus(datalink.SmallCorpusConfig(7))
	if err != nil {
		log.Fatal(err)
	}

	svc := service.New(ds.External, ds.Local, ds.Ontology, service.Options{
		DefaultLinker: datalink.DefaultLinkingConfig(),
	})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	fmt.Printf("service listening on %s\n\n", srv.URL)

	post := func(path, body string) string { return do(srv.URL, "POST", path, body) }
	get := func(path string) string { return do(srv.URL, "GET", path, "") }

	// 1. Learn rules from the corpus's expert links.
	links := make([]string, 0, ds.Training.Len())
	for _, l := range ds.Training.Links {
		links = append(links, fmt.Sprintf(`{"external":%q,"local":%q}`, l.External.Value, l.Local.Value))
	}
	fmt.Println("POST /v1/learn ->", post("/v1/learn", `{"links":[`+strings.Join(links, ",")+`]}`))

	// 2. Status: corpus sizes, model state, available measures.
	fmt.Println("GET /v1/status ->", get("/v1/status"))

	// 3. Top-2 links for one provider item, inside its reduced space.
	item := "http://provider.example/item/D000003"
	query := fmt.Sprintf(`{"items":[%q],"top_k":2}`, item)
	fmt.Println("POST /v1/link ->", post("/v1/link", query))

	// 4. Upsert a new catalog item that matches the provider item's part
	// number exactly. The service re-indexes just this item — no engine
	// rebuild — so the next query sees it immediately.
	pn := partNumberOf(ds.External, item)
	class := classOfBestMatch(ds, item)
	up := fmt.Sprintf(`{"side":"local","items":[{"id":"http://thales.example/catalog/NEW","properties":{%q:[%q]},"classes":[%q]}]}`,
		"http://provider.example/prop#partNumber", pn, class)
	fmt.Println("POST /v1/items/upsert ->", post("/v1/items/upsert", up))
	fmt.Println("POST /v1/link ->", post("/v1/link", query))

	// 5. Remove it again; the following query falls back to the old best.
	fmt.Println("POST /v1/items/remove ->",
		post("/v1/items/remove", `{"side":"local","ids":["http://thales.example/catalog/NEW"]}`))
	fmt.Println("POST /v1/link ->", post("/v1/link", query))
}

// do issues one request and returns the (truncated) response body.
func do(base, method, path, body string) string {
	req, err := http.NewRequest(method, base+path, strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	out := strings.TrimSpace(string(b))
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s %s: %d %s", method, path, resp.StatusCode, out)
	}
	if len(out) > 300 {
		out = out[:300] + "…"
	}
	return out
}

// partNumberOf reads an item's part number from the external graph.
func partNumberOf(se *datalink.Graph, item string) string {
	v, ok := se.FirstObject(datalink.NewIRI(item), datalink.PartNumberProperty)
	if !ok {
		log.Fatalf("no part number on %s", item)
	}
	return v.Value
}

// classOfBestMatch returns the catalog class of the item's true link, so
// the upserted demo item lands inside the reduced linking space.
func classOfBestMatch(ds *datalink.Dataset, item string) string {
	for _, l := range ds.Training.Links {
		if l.External.Value == item {
			if c, ok := ds.Local.FirstObject(l.Local, datalink.RDFType); ok {
				return c.Value
			}
		}
	}
	log.Fatalf("no training link for %s", item)
	return ""
}
