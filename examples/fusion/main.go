// Fusion: the end of the paper's motivating pipeline — after rules have
// reduced the linking space and the matcher has declared same-as links,
// "one data item is built using all the data items that represent the
// same real world object". This example links a provider document into
// the catalog and fuses both descriptions with per-property strategies.
// Run with:
//
//	go run ./examples/fusion
package main

import (
	"fmt"
	"log"
	"os"

	datalink "repro"
)

func main() {
	pn := datalink.NewIRI("http://shop.example/prop/partNumber")
	label := datalink.NewIRI("http://shop.example/prop/label")
	stock := datalink.NewIRI("http://shop.example/prop/stock")

	ol := datalink.NewOntology()
	product := datalink.NewIRI("http://shop.example/onto/Product")
	resistor := datalink.NewIRI("http://shop.example/onto/Resistor")
	ol.AddSubClassOf(resistor, product)

	se := datalink.NewGraph()
	sl := datalink.NewGraph()
	var ts datalink.TrainingSet
	add := func(id, pnv string) {
		ext := datalink.NewIRI("http://provider.example/item/" + id)
		loc := datalink.NewIRI("http://shop.example/catalog/" + id)
		se.Add(datalink.T(ext, pn, datalink.NewLiteral(pnv)))
		sl.Add(datalink.T(loc, pn, datalink.NewLiteral(pnv)))
		sl.Add(datalink.T(loc, datalink.RDFType, resistor))
		ts.Links = append(ts.Links, datalink.Link{External: ext, Local: loc})
	}
	for i, v := range []string{"RN55-ohm-1", "RN55-ohm-2", "RN55-ohm-3"} {
		add(fmt.Sprintf("t%d", i), v)
	}

	// The catalog entry our incoming item will match (part of SL before
	// the pipeline builds its instance index).
	catalogEntry := datalink.NewIRI("http://shop.example/catalog/P77")
	sl.Add(datalink.T(catalogEntry, pn, datalink.NewLiteral("RN55-ohm-77")))
	sl.Add(datalink.T(catalogEntry, label, datalink.NewLiteral("RN55 resistor")))
	sl.Add(datalink.T(catalogEntry, stock, datalink.NewLiteral("412")))
	sl.Add(datalink.T(catalogEntry, datalink.RDFType, resistor))

	pipeline, err := datalink.NewPipeline(datalink.LearnerConfig{SupportThreshold: 0.1}, ts, se, sl, ol)
	if err != nil {
		log.Fatalf("learning: %v", err)
	}

	// A new provider item arrives with a richer description than the
	// catalog entry it matches.
	newItem := datalink.NewIRI("http://provider.example/item/incoming")
	se.Add(datalink.T(newItem, pn, datalink.NewLiteral("RN55.ohm.77")))
	se.Add(datalink.T(newItem, label, datalink.NewLiteral("RN55 precision metal film resistor, 1% tolerance")))

	matches, err := pipeline.LinkWithin([]datalink.Term{newItem}, datalink.LinkerConfig{
		Comparators: []datalink.Comparator{{
			ExternalProperty: pn, LocalProperty: pn,
			Measure: datalink.JaroWinkler, Weight: 1,
		}},
		Threshold: 0.9,
	})
	if err != nil {
		log.Fatalf("linking: %v", err)
	}
	if len(matches) == 0 {
		log.Fatal("no match found inside the reduced space")
	}
	m := matches[0]
	fmt.Printf("linked %s\n    -> %s (score %.3f)\n\n", m.External.Value, m.Local.Value, m.Score)

	// Fuse: keep the catalog part number, take the longest label, union
	// everything else.
	entities := datalink.Fuse(
		[][2]datalink.Term{{m.External, m.Local}},
		se, sl,
		datalink.FusionConfig{
			Default: datalink.FuseUnion,
			PerProperty: map[datalink.Term]datalink.FusionStrategy{
				pn:    datalink.FusePreferLocal,
				label: datalink.FuseLongest,
			},
		},
	)
	e := entities[0]
	fmt.Printf("fused entity %s\n", e.ID.Value)
	for _, p := range []datalink.Term{pn, label, stock} {
		for _, v := range e.Properties[p] {
			fmt.Printf("  %-60s = %q  [%s]\n", p.Value, v.Term.Value, v.Provenance)
		}
	}

	// The fused graph serializes to Turtle for the catalog update.
	fmt.Println("\nfused graph as Turtle:")
	g := datalink.FusedToGraph(entities)
	if err := datalink.WriteTurtle(os.Stdout, g, datalink.TurtleWriterOptions{
		Prefixes: map[string]string{
			"owl":  "http://www.w3.org/2002/07/owl#",
			"prop": "http://shop.example/prop/",
			"cat":  "http://shop.example/catalog/",
			"prov": "http://provider.example/item/",
		},
	}); err != nil {
		log.Fatalf("serializing: %v", err)
	}
}
