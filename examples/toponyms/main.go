// Toponyms: the introduction's other motivating scenario — geographic
// entities whose rdfs:label embeds a place-type word ("Dresden Elbe
// Valley", "Copacabana Beach", "Louvre Museum"). The same learner, with
// rdfs:label as the expert-selected property, discovers rules like
//
//	label(X,Y) ∧ subsegment(Y,"Museum") ⇒ Museum(X)
//
// demonstrating the generality the paper's conclusion calls for. Run:
//
//	go run ./examples/toponyms
package main

import (
	"fmt"
	"log"
	"os"

	datalink "repro"
)

func main() {
	ds, err := datalink.GenerateToponyms(datalink.ToponymConfig{Seed: 7, Links: 2000})
	if err != nil {
		log.Fatalf("generating toponyms: %v", err)
	}
	corpus, err := datalink.BuildCorpus(ds, datalink.LearnerConfig{
		Properties:       []datalink.Term{datalink.RDFSLabel},
		SupportThreshold: 0.002,
	})
	if err != nil {
		log.Fatalf("learning: %v", err)
	}

	fmt.Printf("toponym corpus: |TS|=%d, %d place classes, %d rules learned\n\n",
		ds.Training.Len(), len(ds.Ontology.Leaves()), corpus.Model.Rules.Len())

	fmt.Println("top rules (confidence, lift):")
	for i, r := range corpus.Model.Rules.Rules {
		if i >= 10 {
			break
		}
		fmt.Printf("  %s\n", r)
	}
	fmt.Println()
	if err := datalink.Table1Table(datalink.Table1(corpus, datalink.PaperBands())).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Classify fresh labels the learner has never seen.
	fresh := []string{
		"Dresden Elbe Valley",
		"Copacabana Beach",
		"Louvre Museum",
		"Pont Alexandre III Bridge",
		"An Unremarkable Field",
	}
	fmt.Println("\nclassifying fresh labels:")
	for _, label := range fresh {
		preds := corpus.Classifier.ClassifyValues(map[datalink.Term][]string{
			datalink.RDFSLabel: {label},
		})
		if len(preds) == 0 {
			fmt.Printf("  %-28s -> (no rule fires; falls back to full catalog)\n", label)
			continue
		}
		fmt.Printf("  %-28s -> %s (conf %.2f)\n",
			label, preds[0].Class.Value, preds[0].Rule.Confidence())
	}
}
