// Blocking: compares the paper's rule-based space reduction against the
// classical candidate-generation baselines its related-work section
// cites — standard key blocking, sorted neighbourhood and bi-gram
// indexing — on the same synthetic catalog, reporting reduction ratio,
// pairs completeness and pairs quality. Run:
//
//	go run ./examples/blocking
package main

import (
	"fmt"
	"log"
	"os"

	datalink "repro"
)

func main() {
	ds, err := datalink.GenerateCorpus(datalink.SmallCorpusConfig(11))
	if err != nil {
		log.Fatalf("generating corpus: %v", err)
	}
	corpus, err := datalink.BuildCorpus(ds, datalink.LearnerConfig{})
	if err != nil {
		log.Fatalf("learning: %v", err)
	}

	fmt.Printf("corpus: %d external items vs %d catalog items (%d true matches)\n\n",
		ds.Training.Len(), ds.Config.CatalogSize, ds.Training.Len())

	rows := datalink.CompareBlocking(corpus, datalink.DefaultBlockingMethods(corpus))
	if err := datalink.BlockingTable(rows).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println(`
reading the table:
  reduction ratio     fraction of the cartesian space avoided (higher = cheaper)
  pairs completeness  fraction of true matches kept (higher = safer)
  pairs quality       density of true matches among candidates (higher = tighter)

The rule-based space is schema-free on the external side: it needs no
shared key convention with the provider, only the learned segments —
which is exactly the paper's setting (unknown external schema).`)
}
