// Electronics: the paper's full scenario end to end on a synthetic
// catalog — generate the corpus, learn rules, reproduce Table 1, measure
// the space reduction, and actually link one provider item inside its
// reduced space. Run with:
//
//	go run ./examples/electronics           (small scale, ~seconds)
//	go run ./examples/electronics -paper    (paper scale, |TS|=10265)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	datalink "repro"
)

func main() {
	paper := flag.Bool("paper", false, "run at the paper's scale (slower)")
	seed := flag.Int64("seed", 42, "corpus seed")
	flag.Parse()

	cfg := datalink.SmallCorpusConfig(*seed)
	if *paper {
		cfg = datalink.PaperCorpusConfig(*seed)
	}
	ds, err := datalink.GenerateCorpus(cfg)
	if err != nil {
		log.Fatalf("generating corpus: %v", err)
	}
	fmt.Printf("corpus: %d ontology classes (%d leaves), %d catalog items, |TS|=%d\n",
		ds.Ontology.Len(), len(ds.Ontology.Leaves()), cfg.CatalogSize, ds.Training.Len())

	corpus, err := datalink.BuildCorpus(ds, datalink.LearnerConfig{})
	if err != nil {
		log.Fatalf("learning: %v", err)
	}
	fmt.Printf("learned %d rules over property %s\n\n",
		corpus.Model.Rules.Len(), datalink.PartNumberProperty.Value)

	// The paper's Table 1 and the Section 5 statistics.
	if err := datalink.SectionStatsTable(datalink.SectionStats(corpus)).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := datalink.Table1Table(datalink.Table1(corpus, datalink.PaperBands())).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := datalink.SpaceReductionTable(datalink.SpaceReduction(corpus, datalink.PaperBands())).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Take one training item that fires a rule and walk the full pipeline
	// for it: predict classes, build the subspace, and match inside it.
	var (
		item  datalink.Term
		truth datalink.Term
		preds []datalink.Prediction
	)
	for _, link := range ds.Training.Links {
		p := corpus.Classifier.Classify(link.External, ds.External)
		if len(p) == 0 {
			continue
		}
		if len(preds) == 0 || p[0].Rule.Confidence() > preds[0].Rule.Confidence() {
			item, truth, preds = link.External, link.Local, p
		}
		if preds[0].Rule.Confidence() == 1 {
			break
		}
	}
	if len(preds) == 0 {
		fmt.Println("\nno item fired any rule (rare; try another seed)")
		return
	}
	fmt.Printf("\nitem %s\n", item.Value)
	for _, p := range preds {
		fmt.Printf("  predicted %s (conf %.2f, segment %q)\n",
			p.Class.Value, p.Rule.Confidence(), p.Rule.Segment)
	}
	sr := datalink.Space(item, preds, corpus.Instances)
	fmt.Printf("  reduced space: %d of %d (%.0fx)\n", sr.UnionSize, sr.CatalogSize, sr.ReductionFactor())

	// Link inside the reduced space with a Jaro-Winkler matcher on the
	// part-number property.
	pipeline := &matcherPipeline{corpus: corpus, ds: ds}
	best, found := pipeline.linkOne(item)
	if !found {
		fmt.Println("  no match above threshold inside the reduced space")
		return
	}
	status := "WRONG"
	if best.Local == truth {
		status = "correct"
	}
	fmt.Printf("  linked to %s (score %.3f) — %s\n", best.Local.Value, best.Score, status)
}

// matcherPipeline wraps the in-space matcher for one-off linking.
type matcherPipeline struct {
	corpus *datalink.Corpus
	ds     *datalink.Dataset
}

func (mp *matcherPipeline) linkOne(item datalink.Term) (datalink.Match, bool) {
	preds := mp.corpus.Classifier.Classify(item, mp.ds.External)
	sr := datalink.Space(item, preds, mp.corpus.Instances)
	pairs := datalink.CandidatePairs(sr, mp.corpus.Instances)
	if len(pairs) == 0 {
		return datalink.Match{}, false
	}
	extPN := firstLiteral(mp.ds.External, item, datalink.PartNumberProperty)
	best := datalink.Match{External: item, Score: -1}
	for _, pr := range pairs {
		locPN := firstLiteral(mp.ds.Local, pr[1], datalink.PartNumberProperty)
		if s := datalink.JaroWinkler.Similarity(extPN, locPN); s > best.Score {
			best = datalink.Match{External: item, Local: pr[1], Score: s}
		}
	}
	return best, best.Score >= 0.85
}

func firstLiteral(g *datalink.Graph, item, prop datalink.Term) string {
	if v, ok := g.FirstObject(item, prop); ok && v.IsLiteral() {
		return v.Value
	}
	return ""
}
