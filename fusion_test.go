package datalink

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestPublicAPIFusion(t *testing.T) {
	pn := NewIRI("http://ex.org/pn")
	ext := NewIRI("http://provider/x")
	loc := NewIRI("http://catalog/x")
	se := NewGraph()
	sl := NewGraph()
	se.Add(T(ext, pn, NewLiteral("AB-1")))
	sl.Add(T(loc, pn, NewLiteral("AB.1")))

	ents := Fuse([][2]Term{{ext, loc}}, se, sl, FusionConfig{Default: FuseUnion})
	if len(ents) != 1 {
		t.Fatalf("entities = %d", len(ents))
	}
	if got := len(ents[0].Properties[pn]); got != 2 {
		t.Errorf("union values = %d, want 2", got)
	}
	g := FusedToGraph(ents)
	if !g.Has(T(ext, OWLSameAs, loc)) {
		t.Error("sameAs missing in fused graph")
	}
	var buf bytes.Buffer
	if err := WriteTurtle(&buf, g, TurtleWriterOptions{}); err != nil {
		t.Fatalf("WriteTurtle: %v", err)
	}
	if !strings.Contains(buf.String(), "owl:sameAs") {
		t.Errorf("turtle output missing owl:sameAs:\n%s", buf.String())
	}
	back, err := ReadTurtle(&buf)
	if err != nil {
		t.Fatalf("ReadTurtle: %v", err)
	}
	if back.Len() != g.Len() {
		t.Errorf("round-trip Len = %d, want %d", back.Len(), g.Len())
	}
}

// TestClassifierConcurrentUse exercises the documented concurrency
// contract: a built classifier may serve many goroutines.
func TestClassifierConcurrentUse(t *testing.T) {
	ts, se, sl, ol, pnProp := buildTinyWorld(t)
	m, err := Learn(LearnerConfig{SupportThreshold: 0.1}, ts, se, sl, ol)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	cl := NewClassifier(&m.Rules, m.Config.Splitter)
	values := []map[Term][]string{
		{pnProp: {"xx-ohm-zz"}}, // only "ohm" is a known segment
		{pnProp: {"T83 yy"}},
		{pnProp: {"nothing here"}},
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				preds := cl.ClassifyValues(values[i%len(values)])
				switch i % len(values) {
				case 0:
					if len(preds) != 1 || preds[0].Class != NewIRI("http://ex.org/Resistor") {
						errs <- "ohm misclassified"
						return
					}
				case 1:
					if len(preds) != 1 || preds[0].Class != NewIRI("http://ex.org/Capacitor") {
						errs <- "T83 misclassified"
						return
					}
				default:
					if preds != nil {
						errs <- "phantom prediction"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestExperimentTableCSV(t *testing.T) {
	ds, err := GenerateCorpus(SmallCorpusConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	c, err := BuildCorpus(ds, LearnerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := Table1Table(Table1(c, PaperBands()))
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // header + 4 bands
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != "conf.,#rules,#dec.,prec.,recall,lift" {
		t.Errorf("csv header = %q", lines[0])
	}
}
