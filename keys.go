package datalink

import "repro/internal/keys"

// Key is one discovered (almost-)key constraint: a property combination
// whose values uniquely identify instances within a class.
type Key = keys.Key

// KeyConfig tunes key discovery.
type KeyConfig = keys.Config

// DiscoverKeys finds minimal (almost-)keys per class over the
// literal-valued properties of the catalog — the key constraints the
// paper's related work partitions the linking space with.
func DiscoverKeys(sl *Graph, classes []Term, cfg KeyConfig) []Key {
	return keys.Discover(sl, classes, cfg)
}

// KeyBlockingValue concatenates an item's values for a key's properties
// into a blocking key ("" when a property is missing).
func KeyBlockingValue(g *Graph, item Term, properties []Term) string {
	return keys.BlockingKey(g, item, properties)
}
